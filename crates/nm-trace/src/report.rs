//! Post-run analysis: turn a drained [`Trace`] into per-mechanism
//! histogram summaries, the duration samples the "Table 1" constants
//! are derived from, and flamegraph-folded text.

use std::collections::{BTreeMap, VecDeque};

use crate::events::EventId;
use crate::ring::{Trace, TraceEvent};

/// Summary statistics over one mechanism's duration samples (ns).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpanStats {
    /// Number of matched samples.
    pub count: u64,
    /// Sum of all samples, ns.
    pub total_ns: u64,
    /// Median sample, ns.
    pub p50_ns: u64,
    /// Smallest sample, ns.
    pub min_ns: u64,
    /// Largest sample, ns.
    pub max_ns: u64,
}

impl SpanStats {
    /// Builds stats from raw samples (ns).
    pub fn from_samples(mut samples: Vec<u64>) -> SpanStats {
        if samples.is_empty() {
            return SpanStats::default();
        }
        samples.sort_unstable();
        SpanStats {
            count: samples.len() as u64,
            total_ns: samples.iter().sum(),
            p50_ns: samples[samples.len() / 2],
            min_ns: samples[0],
            max_ns: samples[samples.len() - 1],
        }
    }
}

/// The span pairs the report folds (begin id, end id, folded stack).
const SPANS: &[(EventId, EventId, &str)] = &[
    (EventId::SubmitBegin, EventId::SubmitEnd, "core;submit"),
    (
        EventId::TransmitBegin,
        EventId::TransmitEnd,
        "core;transmit",
    ),
    (
        EventId::DispatchBegin,
        EventId::DispatchEnd,
        "core;dispatch",
    ),
    (
        EventId::PollPassBegin,
        EventId::PollPassEnd,
        "progress;poll_pass",
    ),
    (EventId::ThreadBlock, EventId::ThreadWake, "sync;blocked"),
];

/// A digested trace: event counts plus per-mechanism span histograms.
#[derive(Debug, Clone, Default)]
pub struct TraceReport {
    /// Retained events per id.
    pub counts: BTreeMap<EventId, u64>,
    /// Span statistics keyed by folded stack name (see `SPANS`).
    pub spans: BTreeMap<&'static str, SpanStats>,
    /// Events dropped to ring wraparound.
    pub dropped: u64,
}

impl TraceReport {
    /// Digests a drained trace.
    pub fn from_trace(trace: &Trace) -> TraceReport {
        let mut counts = BTreeMap::new();
        for t in &trace.threads {
            for e in &t.events {
                *counts.entry(e.id).or_insert(0) += 1;
            }
        }
        let mut spans = BTreeMap::new();
        for &(begin, end, name) in SPANS {
            let samples = Self::span_durations(trace, begin, end);
            if !samples.is_empty() {
                spans.insert(name, SpanStats::from_samples(samples));
            }
        }
        TraceReport {
            counts,
            spans,
            dropped: trace.dropped(),
        }
    }

    /// Retained events with this id.
    pub fn count(&self, id: EventId) -> u64 {
        self.counts.get(&id).copied().unwrap_or(0)
    }

    /// Durations of `begin`→`end` spans, matched per thread with a LIFO
    /// stack (spans of the same kind may nest but not interleave within
    /// one thread).
    pub fn span_durations(trace: &Trace, begin: EventId, end: EventId) -> Vec<u64> {
        let mut out = Vec::new();
        for t in &trace.threads {
            let mut stack: Vec<u64> = Vec::new();
            for e in &t.events {
                if e.id == begin {
                    stack.push(e.ts);
                } else if e.id == end {
                    if let Some(start) = stack.pop() {
                        out.push(e.ts.saturating_sub(start));
                    }
                }
            }
        }
        out
    }

    /// Gaps between successive events with this id on the same thread,
    /// filtered to the dominant `a` argument (so e.g. the hot lock of a
    /// lock loop is measured, not incidental locks interleaved with it).
    pub fn gap_durations(trace: &Trace, id: EventId) -> Vec<u64> {
        // Find the dominant `a` value across all threads.
        let mut freq: BTreeMap<u64, u64> = BTreeMap::new();
        for t in &trace.threads {
            for e in t.events.iter().filter(|e| e.id == id) {
                *freq.entry(e.a).or_insert(0) += 1;
            }
        }
        let Some((&dominant, _)) = freq.iter().max_by_key(|(_, &n)| n) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for t in &trace.threads {
            let mut prev: Option<u64> = None;
            for e in t.events.iter().filter(|e| e.id == id && e.a == dominant) {
                if let Some(p) = prev {
                    out.push(e.ts.saturating_sub(p));
                }
                prev = Some(e.ts);
            }
        }
        out
    }

    /// Durations between `from` events and `to` events matched FIFO in
    /// global timestamp order across threads (e.g. `OffloadSubmit` on
    /// the application thread → `OffloadRun` on the progression thread).
    pub fn cross_durations(trace: &Trace, from: EventId, to: EventId) -> Vec<u64> {
        let merged: Vec<TraceEvent> = trace.merged();
        let mut pending: VecDeque<u64> = VecDeque::new();
        let mut out = Vec::new();
        for e in &merged {
            if e.id == from {
                pending.push_back(e.ts);
            } else if e.id == to {
                if let Some(start) = pending.pop_front() {
                    out.push(e.ts.saturating_sub(start));
                }
            }
        }
        out
    }

    /// Flamegraph-folded text: one `stack value` line per mechanism.
    ///
    /// Span lines weight by total nanoseconds; `events;<name>` lines
    /// carry raw counts for ids that are not part of a span pair. Feed
    /// to any `flamegraph.pl`-compatible renderer.
    pub fn folded(&self) -> String {
        let mut lines = Vec::new();
        for (name, stats) in &self.spans {
            lines.push(format!("nomad;{} {}", name, stats.total_ns));
        }
        let span_ids: Vec<EventId> = SPANS.iter().flat_map(|&(b, e, _)| [b, e]).collect();
        for (&id, &n) in &self.counts {
            if !span_ids.contains(&id) {
                lines.push(format!("nomad;events;{} {}", id.name(), n));
            }
        }
        let mut out = lines.join("\n");
        out.push('\n');
        out
    }
}

impl std::fmt::Display for TraceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "trace report ({} events dropped)", self.dropped)?;
        writeln!(f, "  spans (ns):")?;
        for (name, s) in &self.spans {
            writeln!(
                f,
                "    {:<24} n={:<8} p50={:<8} min={:<8} max={:<8} total={}",
                name, s.count, s.p50_ns, s.min_ns, s.max_ns, s.total_ns
            )?;
        }
        writeln!(f, "  counts:")?;
        for (id, n) in &self.counts {
            writeln!(f, "    {:<24} {}", id.name(), n)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::ThreadTrace;

    fn ev(ts: u64, id: EventId, a: u64) -> TraceEvent {
        TraceEvent { ts, id, a, b: 0 }
    }

    fn single_thread(events: Vec<TraceEvent>) -> Trace {
        Trace {
            threads: vec![ThreadTrace {
                thread: 0,
                name: "t0".into(),
                dropped: 0,
                events,
            }],
        }
    }

    #[test]
    fn spans_match_lifo_per_thread() {
        let trace = single_thread(vec![
            ev(10, EventId::SubmitBegin, 0),
            ev(12, EventId::SubmitBegin, 0), // nested
            ev(15, EventId::SubmitEnd, 0),   // closes the inner (3 ns)
            ev(30, EventId::SubmitEnd, 0),   // closes the outer (20 ns)
        ]);
        let mut d = TraceReport::span_durations(&trace, EventId::SubmitBegin, EventId::SubmitEnd);
        d.sort_unstable();
        assert_eq!(d, vec![3, 20]);
    }

    #[test]
    fn gaps_filter_to_dominant_lock() {
        let trace = single_thread(vec![
            ev(0, EventId::LockAcquire, 7),
            ev(5, EventId::LockAcquire, 9), // minority lock, ignored
            ev(70, EventId::LockAcquire, 7),
            ev(140, EventId::LockAcquire, 7),
        ]);
        assert_eq!(
            TraceReport::gap_durations(&trace, EventId::LockAcquire),
            vec![70, 70]
        );
    }

    #[test]
    fn cross_durations_match_fifo_across_threads() {
        let trace = Trace {
            threads: vec![
                ThreadTrace {
                    thread: 0,
                    name: "app".into(),
                    dropped: 0,
                    events: vec![
                        ev(0, EventId::OffloadSubmit, 1),
                        ev(10, EventId::OffloadSubmit, 1),
                    ],
                },
                ThreadTrace {
                    thread: 1,
                    name: "progress".into(),
                    dropped: 0,
                    events: vec![
                        ev(400, EventId::OffloadRun, 1),
                        ev(450, EventId::OffloadRun, 1),
                    ],
                },
            ],
        };
        assert_eq!(
            TraceReport::cross_durations(&trace, EventId::OffloadSubmit, EventId::OffloadRun),
            vec![400, 440]
        );
    }

    #[test]
    fn report_counts_and_folded_output() {
        let trace = single_thread(vec![
            ev(0, EventId::PollPassBegin, 0),
            ev(200, EventId::PollPassEnd, 1),
            ev(300, EventId::PacketTx, 64),
        ]);
        let report = TraceReport::from_trace(&trace);
        assert_eq!(report.count(EventId::PacketTx), 1);
        assert_eq!(report.spans["progress;poll_pass"].p50_ns, 200);
        let folded = report.folded();
        assert!(folded.contains("nomad;progress;poll_pass 200"));
        assert!(folded.contains("nomad;events;PacketTx 1"));
    }

    #[test]
    fn span_stats_median() {
        let s = SpanStats::from_samples(vec![5, 1, 9]);
        assert_eq!(s.count, 3);
        assert_eq!(s.p50_ns, 5);
        assert_eq!(s.min_ns, 1);
        assert_eq!(s.max_ns, 9);
        assert_eq!(s.total_ns, 15);
    }
}
