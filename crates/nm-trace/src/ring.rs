//! Lock-free per-thread event rings (the FxT idea: fixed-size records,
//! one ring per thread, drained after the run).
//!
//! Each thread owns one ring; `emit` is a handful of `Relaxed` stores
//! plus one `Release` cursor bump — no locks, no allocation, no
//! cross-thread traffic on the hot path. Rings overwrite their oldest
//! slot when full and count total writes, so the drain reports exactly
//! how many events were dropped. Rings are registered globally (and
//! kept alive by an `Arc` even after their thread exits) so
//! [`take_trace`] can collect every thread's events post-run.
//!
//! Draining while writers are still emitting is safe (all slot access
//! is atomic) but a wrapping writer can tear a slot being read; drain
//! after the traced workload quiesces for exact counts.

use crate::events::EventId;

/// One decoded trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Timestamp from [`crate::now_ns`] (real or virtual nanoseconds).
    pub ts: u64,
    /// What happened.
    pub id: EventId,
    /// First argument (meaning per [`EventId`] docs).
    pub a: u64,
    /// Second argument.
    pub b: u64,
}

/// The drained events of one thread, in emission order.
#[derive(Debug, Clone, Default)]
pub struct ThreadTrace {
    /// Registration index of the thread's ring (stable, dense).
    pub thread: u64,
    /// The thread's name at ring creation (test harness threads are
    /// named after their test).
    pub name: String,
    /// Events overwritten because the ring wrapped.
    pub dropped: u64,
    /// Retained events, oldest first.
    pub events: Vec<TraceEvent>,
}

/// A full drain: one [`ThreadTrace`] per ring, in registration order.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Per-thread traces.
    pub threads: Vec<ThreadTrace>,
}

impl Trace {
    /// All events across threads, sorted by timestamp (ties keep
    /// per-thread order).
    pub fn merged(&self) -> Vec<TraceEvent> {
        let mut all: Vec<TraceEvent> = self
            .threads
            .iter()
            .flat_map(|t| t.events.iter().copied())
            .collect();
        all.sort_by_key(|e| e.ts);
        all
    }

    /// Total retained events.
    pub fn len(&self) -> usize {
        self.threads.iter().map(|t| t.events.len()).sum()
    }

    /// True if no events were retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events dropped to ring wraparound.
    pub fn dropped(&self) -> u64 {
        self.threads.iter().map(|t| t.dropped).sum()
    }

    /// How many retained events have this id.
    pub fn count(&self, id: EventId) -> u64 {
        self.threads
            .iter()
            .flat_map(|t| t.events.iter())
            .filter(|e| e.id == id)
            .count() as u64
    }
}

#[cfg(feature = "trace")]
mod imp {
    use super::*;
    use std::cell::OnceCell;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex};

    /// Default ring capacity (events per thread).
    const DEFAULT_CAP: usize = 1 << 16;

    struct Slot {
        ts: AtomicU64,
        id: AtomicU64,
        a: AtomicU64,
        b: AtomicU64,
    }

    impl Slot {
        fn empty() -> Slot {
            Slot {
                ts: AtomicU64::new(0),
                id: AtomicU64::new(0),
                a: AtomicU64::new(0),
                b: AtomicU64::new(0),
            }
        }
    }

    pub(super) struct ThreadRing {
        index: u64,
        name: String,
        cap: usize,
        /// Total events ever written; slot = head % cap.
        head: AtomicU64,
        slots: Box<[Slot]>,
    }

    impl ThreadRing {
        pub(super) fn new(index: u64, name: String, cap: usize) -> ThreadRing {
            let cap = cap.max(1);
            ThreadRing {
                index,
                name,
                cap,
                head: AtomicU64::new(0),
                slots: (0..cap).map(|_| Slot::empty()).collect(),
            }
        }

        /// Writer side: only the owning thread calls this.
        #[inline]
        pub(super) fn write(&self, ts: u64, id: EventId, a: u64, b: u64) {
            let head = self.head.load(Ordering::Relaxed);
            let slot = &self.slots[(head as usize) % self.cap];
            slot.ts.store(ts, Ordering::Relaxed);
            slot.id.store(id as u64, Ordering::Relaxed);
            slot.a.store(a, Ordering::Relaxed);
            slot.b.store(b, Ordering::Relaxed);
            // Release: a drain that Acquire-loads the cursor sees the
            // slot stores above.
            self.head.store(head + 1, Ordering::Release);
        }

        pub(super) fn drain(&self, reset: bool) -> ThreadTrace {
            let head = self.head.load(Ordering::Acquire);
            let retained = (head as usize).min(self.cap);
            let mut events = Vec::with_capacity(retained);
            for i in (head as usize - retained)..head as usize {
                let slot = &self.slots[i % self.cap];
                let raw = slot.id.load(Ordering::Relaxed);
                // Id 0 is unused: a zero here means the slot was never
                // written (only possible mid-write teardown races).
                if let Some(id) = EventId::from_raw(raw) {
                    events.push(TraceEvent {
                        ts: slot.ts.load(Ordering::Relaxed),
                        id,
                        a: slot.a.load(Ordering::Relaxed),
                        b: slot.b.load(Ordering::Relaxed),
                    });
                }
            }
            if reset {
                self.head.store(0, Ordering::Release);
            }
            ThreadTrace {
                thread: self.index,
                name: self.name.clone(),
                dropped: head - retained as u64,
                events,
            }
        }
    }

    static RING_CAP: AtomicUsize = AtomicUsize::new(DEFAULT_CAP);
    static REGISTRY: Mutex<Vec<Arc<ThreadRing>>> = Mutex::new(Vec::new());

    thread_local! {
        static RING: OnceCell<Arc<ThreadRing>> = const { OnceCell::new() };
    }

    fn with_ring(f: impl FnOnce(&ThreadRing)) {
        RING.with(|cell| {
            let ring = cell.get_or_init(|| {
                let mut registry = REGISTRY.lock().unwrap();
                let ring = Arc::new(ThreadRing::new(
                    registry.len() as u64,
                    std::thread::current().name().unwrap_or("?").to_string(),
                    RING_CAP.load(Ordering::Relaxed),
                ));
                registry.push(Arc::clone(&ring));
                ring
            });
            f(ring);
        });
    }

    /// Records one event in the calling thread's ring.
    #[inline]
    pub fn emit(id: EventId, a: u64, b: u64) {
        let ts = crate::clock::now_ns();
        with_ring(|ring| ring.write(ts, id, a, b));
    }

    /// True when the `trace` feature is compiled in.
    pub fn enabled() -> bool {
        true
    }

    /// Sets the capacity (in events) used for rings created after this
    /// call; existing rings keep their size.
    pub fn set_ring_capacity(cap: usize) {
        RING_CAP.store(cap.max(1), Ordering::Relaxed);
    }

    pub fn collect(reset: bool) -> Trace {
        let registry = REGISTRY.lock().unwrap();
        Trace {
            threads: registry.iter().map(|r| r.drain(reset)).collect(),
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn ring_wraps_overwriting_oldest() {
            let ring = ThreadRing::new(0, "test".into(), 8);
            for i in 0..13u64 {
                ring.write(i, EventId::LockAcquire, i, 0);
            }
            let t = ring.drain(false);
            assert_eq!(t.dropped, 5);
            assert_eq!(t.events.len(), 8);
            // Oldest retained is write #5; order is preserved.
            let args: Vec<u64> = t.events.iter().map(|e| e.a).collect();
            assert_eq!(args, (5..13).collect::<Vec<u64>>());
        }

        #[test]
        fn drain_reset_restarts_ring() {
            let ring = ThreadRing::new(0, "test".into(), 4);
            ring.write(1, EventId::PacketTx, 64, 0);
            let t = ring.drain(true);
            assert_eq!(t.events.len(), 1);
            let t = ring.drain(false);
            assert_eq!(t.events.len(), 0);
            assert_eq!(t.dropped, 0);
        }

        /// Regression: the `head == cap` boundary is the classic
        /// off-by-one spot (a `<=`/`<` slip either drops a live event or
        /// reports `dropped: u64::MAX`). Exactly `cap` writes must
        /// retain all `cap` events with zero drops; one more write must
        /// drop exactly the oldest.
        #[test]
        fn exact_capacity_boundary() {
            for (writes, want_dropped) in [(7u64, 0u64), (8, 0), (9, 1)] {
                let ring = ThreadRing::new(0, "test".into(), 8);
                for i in 0..writes {
                    ring.write(i, EventId::LockAcquire, i, 0);
                }
                let t = ring.drain(false);
                assert_eq!(t.dropped, want_dropped, "writes={writes}");
                assert_eq!(t.events.len() as u64, writes - want_dropped);
                let args: Vec<u64> = t.events.iter().map(|e| e.a).collect();
                assert_eq!(args, (want_dropped..writes).collect::<Vec<u64>>());
            }
        }

        /// Regression: drain-with-reset at exactly `head == cap` must
        /// leave the ring genuinely empty — a stale `head` here would
        /// make the next drain report `cap` phantom events.
        #[test]
        fn reset_at_exact_capacity_boundary() {
            let ring = ThreadRing::new(0, "test".into(), 4);
            for i in 0..4u64 {
                ring.write(i, EventId::LockAcquire, i, 0);
            }
            let t = ring.drain(true);
            assert_eq!((t.events.len(), t.dropped), (4, 0));
            let t = ring.drain(false);
            assert_eq!((t.events.len(), t.dropped), (0, 0));
            // The ring is reusable after reset: writes land in slot 0.
            ring.write(9, EventId::PacketTx, 9, 0);
            let t = ring.drain(false);
            assert_eq!(t.events.len(), 1);
            assert_eq!(t.events[0].a, 9);
        }

        /// A reader draining while the writer wraps over the seam may
        /// observe torn slots, but must never panic, return an invalid
        /// id, or report inconsistent counts (module docs promise
        /// "safe, inexact" for concurrent drains).
        #[test]
        fn torn_reader_at_wrap_seam_is_safe() {
            let ring = Arc::new(ThreadRing::new(0, "test".into(), 4));
            let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
            let writer = {
                let ring = Arc::clone(&ring);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        // Tiny ring: nearly every write crosses the seam.
                        ring.write(i, EventId::PacketTx, i, i);
                        i += 1;
                    }
                    i
                })
            };
            let mut prev_dropped = 0u64;
            for _ in 0..200 {
                let t = ring.drain(false);
                assert!(t.events.len() <= 4);
                // head only grows between non-reset drains, so the
                // dropped count must be monotonic; a torn cursor read
                // would break this.
                assert!(t.dropped >= prev_dropped);
                prev_dropped = t.dropped;
                for e in &t.events {
                    assert_eq!(e.id, EventId::PacketTx);
                }
            }
            stop.store(true, Ordering::Relaxed);
            let total = writer.join().unwrap();
            // Quiesced drain is exact again: counts reconcile.
            let t = ring.drain(false);
            assert_eq!(t.dropped + t.events.len() as u64, total);
        }

        #[test]
        fn capacity_one_keeps_last_event() {
            let ring = ThreadRing::new(0, "test".into(), 1);
            for i in 0..3u64 {
                ring.write(i, EventId::PacketRx, i, 0);
            }
            let t = ring.drain(false);
            assert_eq!(t.dropped, 2);
            assert_eq!(t.events.len(), 1);
            assert_eq!(t.events[0].a, 2);
        }
    }
}

#[cfg(not(feature = "trace"))]
mod imp {
    use super::*;

    /// Records one event — compiled to nothing (`trace` feature is off).
    #[inline(always)]
    pub fn emit(_id: EventId, _a: u64, _b: u64) {}

    /// True when the `trace` feature is compiled in.
    pub fn enabled() -> bool {
        false
    }

    /// No-op without the `trace` feature.
    pub fn set_ring_capacity(_cap: usize) {}

    pub fn collect(_reset: bool) -> Trace {
        Trace::default()
    }
}

pub use imp::{emit, enabled, set_ring_capacity};

/// Drains every thread's ring, resetting them for the next run.
pub fn take_trace() -> Trace {
    imp::collect(true)
}

/// Copies every thread's ring without resetting.
pub fn snapshot_trace() -> Trace {
    imp::collect(false)
}

/// Clears all rings (start of a measured region).
pub fn reset() {
    let _ = imp::collect(true);
}
