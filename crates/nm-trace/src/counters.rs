//! The stack-wide counter registry and the counter primitives.
//!
//! The paper decomposes thread-support overheads into per-primitive
//! constants (70 ns per lock acquire/release cycle, 750 ns per context
//! switch, …). These counters let the calibration harness attribute
//! costs: how many lock operations sit on the critical path of one
//! pingpong iteration, and how often they were contended.
//!
//! [`Counter`] and [`LockStats`] used to live in `nm_sync::stats`; they
//! moved here so every layer shares one registry ([`registry`]) instead
//! of bespoke per-crate stats structs. `nm_sync::stats` re-exports this
//! module for compatibility.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Acquisition/contention counters attached to every lock in the stack.
///
/// All increments are `Relaxed` single atomic adds; on x86-64 this costs on
/// the order of a nanosecond and does not perturb the measured constants at
/// the precision the paper reports.
#[derive(Debug, Default)]
pub struct LockStats {
    acquisitions: AtomicU64,
    contended: AtomicU64,
}

impl LockStats {
    /// Creates zeroed counters.
    pub const fn new() -> Self {
        LockStats {
            acquisitions: AtomicU64::new(0),
            contended: AtomicU64::new(0),
        }
    }

    /// Records one successful acquisition; `contended` when the fast path
    /// failed and the acquirer had to spin.
    ///
    /// With the `trace` feature enabled this also feeds the registry's
    /// stack-wide `sync.lock.acquisitions` / `sync.lock.contended`
    /// aggregates, so cross-layer lock totals have one source of truth.
    #[inline]
    pub fn record_acquire(&self, contended: bool) {
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
        if contended {
            self.contended.fetch_add(1, Ordering::Relaxed);
        }
        #[cfg(feature = "trace")]
        {
            let (acq, cont) = global_lock_counters();
            acq.incr();
            if contended {
                cont.incr();
            }
        }
    }

    /// Total successful acquisitions.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions.load(Ordering::Relaxed)
    }

    /// Acquisitions that found the lock held and had to spin.
    pub fn contentions(&self) -> u64 {
        self.contended.load(Ordering::Relaxed)
    }

    /// Fraction of acquisitions that were contended, in `[0, 1]`.
    pub fn contention_ratio(&self) -> f64 {
        let acq = self.acquisitions();
        if acq == 0 {
            0.0
        } else {
            self.contentions() as f64 / acq as f64
        }
    }

    /// Resets both counters to zero.
    pub fn reset(&self) {
        self.acquisitions.store(0, Ordering::Relaxed);
        self.contended.store(0, Ordering::Relaxed);
    }
}

/// A general-purpose relaxed event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a zeroed counter.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero, returning the previous value.
    pub fn take(&self) -> u64 {
        self.0.swap(0, Ordering::Relaxed)
    }
}

/// The global named-counter registry.
///
/// Counters are created on first use and live for the process; lookups
/// take a mutex, so call sites should cache the returned [`Arc`] (hot
/// paths never look up by name per operation).
#[derive(Debug, Default)]
pub struct CounterRegistry {
    entries: Mutex<Vec<(&'static str, Arc<Counter>)>>,
}

impl CounterRegistry {
    /// Returns the counter named `name`, creating it if needed.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        let mut entries = self.entries.lock().unwrap();
        if let Some((_, c)) = entries.iter().find(|(n, _)| *n == name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::new());
        entries.push((name, Arc::clone(&c)));
        c
    }

    /// Snapshot of every registered counter, sorted by name.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        let entries = self.entries.lock().unwrap();
        let mut out: Vec<_> = entries.iter().map(|(n, c)| (*n, c.get())).collect();
        out.sort_unstable_by_key(|(n, _)| *n);
        out
    }

    /// Resets every registered counter to zero.
    pub fn reset_all(&self) {
        let entries = self.entries.lock().unwrap();
        for (_, c) in entries.iter() {
            c.take();
        }
    }
}

/// The process-wide registry.
pub fn registry() -> &'static CounterRegistry {
    static REGISTRY: OnceLock<CounterRegistry> = OnceLock::new();
    REGISTRY.get_or_init(CounterRegistry::default)
}

/// Stack-wide lock aggregates, registered once in [`registry`].
#[cfg(feature = "trace")]
fn global_lock_counters() -> &'static (Arc<Counter>, Arc<Counter>) {
    static GLOBAL: OnceLock<(Arc<Counter>, Arc<Counter>)> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        (
            registry().counter("sync.lock.acquisitions"),
            registry().counter("sync.lock.contended"),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_stats_accumulate() {
        let s = LockStats::new();
        s.record_acquire(false);
        s.record_acquire(true);
        s.record_acquire(true);
        assert_eq!(s.acquisitions(), 3);
        assert_eq!(s.contentions(), 2);
        assert!((s.contention_ratio() - 2.0 / 3.0).abs() < 1e-12);
        s.reset();
        assert_eq!(s.acquisitions(), 0);
        assert_eq!(s.contention_ratio(), 0.0);
    }

    #[test]
    fn counter_take_swaps_to_zero() {
        let c = Counter::new();
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.take(), 10);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn registry_dedupes_by_name() {
        let a = registry().counter("test.registry.dedup");
        let b = registry().counter("test.registry.dedup");
        assert!(Arc::ptr_eq(&a, &b));
        a.add(3);
        let snap = registry().snapshot();
        let entry = snap.iter().find(|(n, _)| *n == "test.registry.dedup");
        assert_eq!(entry, Some(&("test.registry.dedup", 3)));
    }

    #[cfg(feature = "trace")]
    #[test]
    fn lock_stats_feed_global_aggregates() {
        let acq = registry().counter("sync.lock.acquisitions");
        let before = acq.get();
        LockStats::new().record_acquire(true);
        assert!(acq.get() > before);
    }
}
