//! The stack-wide counter registry — re-exported from
//! [`nm_metrics::counters`].
//!
//! [`Counter`] and [`LockStats`] used to live here (and before that in
//! `nm_sync::stats`); they moved to the always-on `nm-metrics` crate so
//! the metrics layer owns the single counters surface. This module
//! remains the `nm-trace`-facing path: the registry obtained through
//! [`registry`] is the *same object* as `nm_metrics::metrics().counters()`
//! — one surface, no copies. Unlike trace events, counters are never
//! feature-gated.

pub use nm_metrics::counters::{registry, Counter, CounterRegistry, LockStats, ShardedCounter};
