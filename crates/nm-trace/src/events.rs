//! The event schema: every traceable mechanism in the stack has a
//! registered [`EventId`] here, with its layer and argument meaning
//! documented in [`EventId::ALL`].
//!
//! The table is the single source of truth: `cargo xtask lint-trace`
//! scans the workspace for `trace_event!(Name, ...)` sites and fails if
//! a name is not a registered variant, so the schema cannot silently
//! drift from the instrumentation.

/// Identifier of a trace event kind.
///
/// Discriminants are grouped by layer (`nm-sync` 1.., `nm-core` 16..,
/// `nm-progress` 32.., `nm-sched` 48.., `nm-fabric` 64..) and are part
/// of the on-ring encoding; never reuse a retired value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u16)]
#[non_exhaustive]
pub enum EventId {
    // ---- nm-sync -------------------------------------------------------
    /// A lock was acquired. `a` = lock id (address), `b` = 1 if the
    /// acquisition was contended (slow path), 0 if the fast path won.
    LockAcquire = 1,
    /// A lock was released. `a` = lock id (address).
    LockRelease = 2,
    /// A spin-phase wait completed without blocking. `a` = strategy tag.
    WaitSpun = 3,
    /// A wait exhausted its spin budget and is about to block.
    WaitBlocked = 4,
    /// A thread is about to block on a condition variable.
    ThreadBlock = 5,
    /// A thread resumed after blocking. Paired with [`EventId::ThreadBlock`];
    /// the span is the blocking context-switch cost.
    ThreadWake = 6,
    /// A completion flag was signalled.
    FlagSignal = 7,

    // ---- nm-core -------------------------------------------------------
    /// Entry into `isend`'s collect-layer enqueue. `a` = gate, `b` = bytes.
    SubmitBegin = 16,
    /// End of `isend`'s collect-layer enqueue. `a` = gate.
    SubmitEnd = 17,
    /// A receive was posted. `a` = gate.
    RecvPosted = 18,
    /// Transfer layer starts pushing a packet to a driver. `a` = gate,
    /// `b` = rail.
    TransmitBegin = 19,
    /// Transfer layer finished a post attempt. `a` = gate, `b` = 1 if the
    /// packet was accepted, 0 on `WouldBlock`.
    TransmitEnd = 20,
    /// An inbound packet enters protocol dispatch. `a` = gate, `b` = bytes.
    DispatchBegin = 21,
    /// Protocol dispatch for one packet finished. `a` = gate.
    DispatchEnd = 22,
    /// One `CommCore::progress` pass completed. `a` = events handled.
    ProgressPass = 23,
    /// Collect-layer queue depth after an enqueue. `a` = gate, `b` = depth.
    QueueDepth = 24,
    /// A request's completion was delivered. `a` = request id, `b` = path
    /// (0 flag, 1 queue, 2 handler, 3 waker).
    CompletionDeliver = 25,
    /// A completion event was pushed onto a completion queue.
    /// `a` = request id, `b` = queue depth after the push.
    CqPush = 26,
    /// A completion event was popped from a completion queue.
    /// `a` = request id, `b` = queue depth after the pop.
    CqPop = 27,
    /// A completion handler ran (fire-and-forget path). `a` = request id.
    HandlerRun = 28,
    /// A reliability frame was retransmitted after an ack timeout.
    /// `a` = rail (global driver index), `b` = wire sequence number.
    Retransmit = 29,
    /// A rail was declared dead after consecutive retransmit
    /// exhaustions. `a` = gate, `b` = rail (gate-local index).
    RailDead = 30,
    /// A request was cancelled. `a` = request id.
    RequestCancel = 31,

    // ---- nm-progress ---------------------------------------------------
    /// A PIOMan-style poll pass over all registered sources begins.
    PollPassBegin = 32,
    /// The poll pass ended. `a` = number of sources that progressed.
    /// The [`EventId::PollPassBegin`]→end span is the paper's ~200 ns
    /// "PIOMan pass" cost.
    PollPassEnd = 33,
    /// A tasklet moved IDLE→SCHEDULED. `a` = tasklet address.
    TaskletSched = 34,
    /// A tasklet moved SCHEDULED→RUNNING. `a` = tasklet address. The
    /// [`EventId::TaskletSched`]→run gap is the tasklet hand-off cost.
    TaskletRun = 35,
    /// A job was submitted to an offload queue. `a` = offload mode.
    OffloadSubmit = 36,
    /// An offloaded job started running on the progression side. Paired
    /// FIFO with [`EventId::OffloadSubmit`]; the gap is the offload hop.
    OffloadRun = 37,
    /// A progression thread resumed from its idle park.
    ProgressionWake = 38,
    /// An async waiter registered a waker with the progress engine's
    /// waker table. `a` = request id.
    WakerRegister = 39,
    /// Completion delivery woke (or tried to wake) a registered waker.
    /// `a` = request id, `b` = 1 if a waker was found and woken, 0 if
    /// none was registered yet (the future's re-check covers this race).
    WakerWake = 40,
    /// A timer-wheel deadline fired. `a` = entries due, `b` = entries
    /// still pending after the pop.
    TimerFire = 41,

    // ---- nm-sched ------------------------------------------------------
    /// A worker passed a task boundary (cooperative context switch).
    /// `a` = worker index.
    CtxSwitch = 48,
    /// A worker entered its idle hook (no runnable task). `a` = worker.
    IdleHook = 49,

    // ---- nm-fabric -----------------------------------------------------
    /// A packet was posted to a NIC. `a` = payload bytes.
    PacketTx = 64,
    /// A packet was received from a NIC. `a` = payload bytes.
    PacketRx = 65,
    /// The NIC tx queue changed idle state. `a` = 1 entering idle
    /// (queue drained), 0 leaving idle (first packet queued).
    NicIdle = 66,
    /// Chaos injection dropped a packet. `a` = payload bytes.
    FaultLoss = 67,
    /// Chaos injection duplicated a packet. `a` = payload bytes.
    FaultDup = 68,
    /// Chaos injection flipped a payload byte. `a` = byte index.
    FaultCorrupt = 69,
    /// Chaos injection held a packet back. `a` = hold duration in polls.
    FaultDelay = 70,
    /// Chaos injection opened a transient NIC stall window.
    /// `a` = refused-attempt window length.
    FaultStall = 71,
    /// Chaos injection released a packet out of arrival order.
    /// `a` = shuffle-buffer depth at release.
    FaultReorder = 72,

    // ---- span (per-message lifecycle, stitched by nm-obs) --------------
    /// A send/recv was submitted and its span id allocated. `a` = span,
    /// `b` = gate. First event of every message timeline.
    SpanSubmit = 80,
    /// The message entered a collect-layer queue. `a` = span,
    /// `b` = queue depth after the enqueue.
    SpanCollect = 81,
    /// A frame carrying this span was accepted by a driver. `a` = span,
    /// `b` = wire sequence number (0 on unreliable gates).
    SpanWireTx = 82,
    /// A frame carrying this span arrived from the wire. `a` = span
    /// (the *sender's* span id, read from the frame header), `b` = wire
    /// sequence number. This is the cross-rank join point.
    SpanWireRx = 83,
    /// A frame carrying this span was retransmitted. `a` = span,
    /// `b` = wire sequence number.
    SpanRetx = 84,
    /// An inbound frame completed a posted receive: the sender-side and
    /// receiver-side spans join. `a` = wire (sender) span, `b` = local
    /// receive-request span.
    SpanDeliver = 85,
    /// The message's completion was delivered. `a` = span, `b` = path
    /// (0 flag, 1 queue, 2 handler, 3 waker).
    SpanComplete = 86,
    /// Completion delivery woke an async waker registered for this
    /// span's request. `a` = span.
    SpanWake = 87,
}

/// Schema row: one registered event kind.
#[derive(Debug, Clone, Copy)]
pub struct EventInfo {
    /// The event id.
    pub id: EventId,
    /// Variant name, as written at `trace_event!` sites.
    pub name: &'static str,
    /// Crate/layer that emits it.
    pub layer: &'static str,
    /// Meaning of the `a` and `b` arguments.
    pub args: &'static str,
}

macro_rules! schema {
    ($($id:ident, $layer:literal, $args:literal;)*) => {
        /// The full registered schema, one row per [`EventId`] variant.
        pub const ALL: &'static [EventInfo] = &[
            $(EventInfo {
                id: EventId::$id,
                name: stringify!($id),
                layer: $layer,
                args: $args,
            },)*
        ];
    };
}

impl EventId {
    schema! {
        LockAcquire, "nm-sync", "a=lock id, b=contended";
        LockRelease, "nm-sync", "a=lock id";
        WaitSpun, "nm-sync", "a=strategy tag";
        WaitBlocked, "nm-sync", "a=strategy tag";
        ThreadBlock, "nm-sync", "-";
        ThreadWake, "nm-sync", "-";
        FlagSignal, "nm-sync", "-";
        SubmitBegin, "nm-core", "a=gate, b=bytes";
        SubmitEnd, "nm-core", "a=gate";
        RecvPosted, "nm-core", "a=gate";
        TransmitBegin, "nm-core", "a=gate, b=rail";
        TransmitEnd, "nm-core", "a=gate, b=posted";
        DispatchBegin, "nm-core", "a=gate, b=bytes";
        DispatchEnd, "nm-core", "a=gate";
        ProgressPass, "nm-core", "a=events handled";
        QueueDepth, "nm-core", "a=gate, b=depth";
        CompletionDeliver, "nm-core", "a=request id, b=path";
        CqPush, "nm-core", "a=request id, b=depth";
        CqPop, "nm-core", "a=request id, b=depth";
        HandlerRun, "nm-core", "a=request id";
        Retransmit, "nm-core", "a=rail, b=wire seq";
        RailDead, "nm-core", "a=gate, b=rail";
        RequestCancel, "nm-core", "a=request id";
        PollPassBegin, "nm-progress", "-";
        PollPassEnd, "nm-progress", "a=sources progressed";
        TaskletSched, "nm-progress", "a=tasklet id";
        TaskletRun, "nm-progress", "a=tasklet id";
        OffloadSubmit, "nm-progress", "a=offload mode";
        OffloadRun, "nm-progress", "a=offload mode";
        ProgressionWake, "nm-progress", "-";
        WakerRegister, "nm-progress", "a=request id";
        WakerWake, "nm-progress", "a=request id, b=found";
        TimerFire, "nm-progress", "a=due, b=pending";
        CtxSwitch, "nm-sched", "a=worker";
        IdleHook, "nm-sched", "a=worker";
        PacketTx, "nm-fabric", "a=bytes";
        PacketRx, "nm-fabric", "a=bytes";
        NicIdle, "nm-fabric", "a=entering idle";
        FaultLoss, "nm-fabric", "a=bytes";
        FaultDup, "nm-fabric", "a=bytes";
        FaultCorrupt, "nm-fabric", "a=byte index";
        FaultDelay, "nm-fabric", "a=hold polls";
        FaultStall, "nm-fabric", "a=window length";
        FaultReorder, "nm-fabric", "a=buffer depth";
        SpanSubmit, "span", "a=span, b=gate";
        SpanCollect, "span", "a=span, b=depth";
        SpanWireTx, "span", "a=span, b=wire seq";
        SpanWireRx, "span", "a=sender span, b=wire seq";
        SpanRetx, "span", "a=span, b=wire seq";
        SpanDeliver, "span", "a=sender span, b=recv span";
        SpanComplete, "span", "a=span, b=path";
        SpanWake, "span", "a=span";
    }

    /// Decodes a raw on-ring discriminant back into an id.
    pub fn from_raw(raw: u64) -> Option<EventId> {
        EventId::ALL
            .iter()
            .find(|info| info.id as u64 == raw)
            .map(|info| info.id)
    }

    /// The variant name (matches what `trace_event!` sites write).
    pub fn name(self) -> &'static str {
        EventId::ALL
            .iter()
            .find(|info| info.id == self)
            .map(|info| info.name)
            .unwrap_or("?")
    }
}

/// Records one event in the current thread's ring.
///
/// Takes a bare [`EventId`] variant name (so `cargo xtask lint-trace`
/// can check sites against the schema by plain text scanning) plus up
/// to two integer arguments. With the `trace` feature disabled this
/// expands to a call to an empty `#[inline(always)]` function and
/// compiles to nothing.
#[macro_export]
macro_rules! trace_event {
    ($name:ident) => {
        $crate::emit($crate::EventId::$name, 0, 0)
    };
    ($name:ident, $a:expr) => {
        $crate::emit($crate::EventId::$name, ($a) as u64, 0)
    };
    ($name:ident, $a:expr, $b:expr) => {
        $crate::emit($crate::EventId::$name, ($a) as u64, ($b) as u64)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_ids_unique_and_round_trip() {
        for (i, info) in EventId::ALL.iter().enumerate() {
            assert_eq!(EventId::from_raw(info.id as u64), Some(info.id));
            assert_eq!(info.id.name(), info.name);
            for other in &EventId::ALL[i + 1..] {
                assert_ne!(info.id as u64, other.id as u64, "duplicate id");
                assert_ne!(info.name, other.name, "duplicate name");
            }
        }
    }

    #[test]
    fn unknown_raw_is_none() {
        assert_eq!(EventId::from_raw(0), None);
        assert_eq!(EventId::from_raw(u64::MAX), None);
    }
}
