//! Wire models: latency, bandwidth and per-packet overhead presets.

use std::time::Duration;

/// Timing model of one unidirectional wire.
///
/// The delivery time of a packet of `n` payload bytes injected at time `t`
/// is `inject + latency + per_packet + n * ns_per_byte`, where `inject` is
/// `max(t, wire_free)` — packets serialize on the wire, so bandwidth is
/// shared between back-to-back messages (that is what flattens the curves
/// of Figs 3–7 at large sizes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireModel {
    /// Propagation + NIC traversal latency, in nanoseconds.
    pub latency_ns: u64,
    /// Serialization cost per payload byte, in nanoseconds (1/bandwidth).
    pub ns_per_byte: f64,
    /// Fixed per-packet processing overhead, in nanoseconds.
    pub per_packet_ns: u64,
    /// Largest payload one wire packet can carry, in bytes.
    pub mtu: usize,
    /// Injection queue depth: how many packets may be in flight before the
    /// NIC stops reporting itself idle.
    pub tx_depth: usize,
}

impl WireModel {
    /// Myricom Myri-10G with the MX driver (the paper's primary network):
    /// ~2.0 µs one-way latency, 10 Gbit/s, 32 KiB MTU.
    pub fn myri_10g() -> Self {
        WireModel {
            latency_ns: 2_000,
            ns_per_byte: 0.8, // 10 Gbit/s = 1.25 GB/s
            per_packet_ns: 100,
            mtu: 32 * 1024,
            tx_depth: 16,
        }
    }

    /// Mellanox ConnectX DDR InfiniBand (MT25418, OFED): ~1.6 µs one-way,
    /// 16 Gbit/s, 2 KiB MTU.
    pub fn connectx_ddr() -> Self {
        WireModel {
            latency_ns: 1_600,
            ns_per_byte: 0.5, // 16 Gbit/s = 2 GB/s
            per_packet_ns: 80,
            mtu: 2 * 1024,
            tx_depth: 64,
        }
    }

    /// Gigabit Ethernet through a TCP stack: ~30 µs one-way, 1 Gbit/s.
    pub fn gige_tcp() -> Self {
        WireModel {
            latency_ns: 30_000,
            ns_per_byte: 8.0, // 1 Gbit/s = 125 MB/s
            per_packet_ns: 1_000,
            mtu: 64 * 1024,
            tx_depth: 128,
        }
    }

    /// A zero-cost wire for overhead-only microbenchmarks: everything the
    /// benchmark measures is then software overhead.
    pub fn ideal() -> Self {
        WireModel {
            latency_ns: 0,
            ns_per_byte: 0.0,
            per_packet_ns: 0,
            mtu: usize::MAX,
            tx_depth: 1024,
        }
    }

    /// Transmission (serialization) time of `bytes` on this wire.
    pub fn tx_time_ns(&self, bytes: usize) -> u64 {
        self.per_packet_ns + (bytes as f64 * self.ns_per_byte) as u64
    }

    /// Full one-way delivery time for a packet of `bytes`, ignoring queuing.
    pub fn one_way_ns(&self, bytes: usize) -> u64 {
        self.latency_ns + self.tx_time_ns(bytes)
    }

    /// Convenience: one-way time as a [`Duration`].
    pub fn one_way(&self, bytes: usize) -> Duration {
        Duration::from_nanos(self.one_way_ns(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn myri_latency_matches_calibration() {
        let m = WireModel::myri_10g();
        // Small messages are latency-bound: ~2.1 µs one-way.
        assert_eq!(m.one_way_ns(1), 2_100);
        // Large messages are bandwidth-bound: 32 KiB at 1.25 GB/s ≈ 26 µs.
        let t = m.one_way_ns(32 * 1024);
        assert!((26_000..30_000).contains(&t), "got {t} ns");
    }

    #[test]
    fn ideal_wire_is_free() {
        let m = WireModel::ideal();
        assert_eq!(m.one_way_ns(1_000_000), 0);
    }

    #[test]
    fn bandwidth_ordering_of_presets() {
        // InfiniBand DDR is faster per byte than Myri-10G, which beats GigE.
        let size = 1 << 20;
        assert!(
            WireModel::connectx_ddr().tx_time_ns(size) < WireModel::myri_10g().tx_time_ns(size)
        );
        assert!(WireModel::myri_10g().tx_time_ns(size) < WireModel::gige_tcp().tx_time_ns(size));
    }

    #[test]
    fn latency_ordering_of_presets() {
        assert!(WireModel::connectx_ddr().latency_ns < WireModel::myri_10g().latency_ns);
        assert!(WireModel::myri_10g().latency_ns < WireModel::gige_tcp().latency_ns);
    }
}
