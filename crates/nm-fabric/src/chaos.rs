//! Deterministic chaos fabric: seeded fault injection over any [`Driver`].
//!
//! The ROADMAP's real-transport item calls for "packet loss/jitter via
//! the existing `reorder` machinery promoted to a chaos-fabric mode" —
//! this module is that promotion. A [`ChaosDriver`] wraps any driver and
//! perturbs its traffic according to a [`FaultPlan`]: packet loss,
//! duplication, single-byte corruption, delay/jitter (packets held for a
//! number of polls), transient NIC stalls (injection refused for a
//! window) and within-rail reordering (absorbing the old
//! `ReorderDriver`). All perturbations draw from **one** seeded
//! linear-congruential sequence, so a run is a pure function of the seed
//! and the call sequence: every fault scenario is a reproducible test.
//!
//! Faults are injected on the receive side (`poll`), modelling the wire,
//! except stalls, which model the local NIC and gate `can_post`/`post`.
//! Every injected fault increments a global `fabric.chaos_*` counter in
//! `nm-metrics`, a per-driver [`ChaosStats`] counter, and emits a trace
//! event (`FaultLoss`, `FaultDup`, `FaultCorrupt`, `FaultDelay`,
//! `FaultStall`, `FaultReorder`).

use std::collections::VecDeque;

use bytes::{Bytes, BytesMut};

use nm_sync::SpinLock;
use nm_trace::trace_event;

use crate::{metrics, Driver, DriverCaps, PostError};

/// The kinds of fault a [`ChaosDriver`] can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Packet silently dropped (never delivered).
    Loss,
    /// Packet delivered twice.
    Duplicate,
    /// One payload byte flipped (integrity layer must catch it).
    Corrupt,
    /// Packet held back for a number of polls (latency jitter).
    Delay,
    /// Transient NIC stall: injection refused for a window.
    Stall,
    /// Within-rail reordering (the old `ReorderDriver` behaviour).
    Reorder,
}

impl FaultKind {
    /// All kinds, in injection order.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::Loss,
        FaultKind::Duplicate,
        FaultKind::Corrupt,
        FaultKind::Delay,
        FaultKind::Stall,
        FaultKind::Reorder,
    ];
}

/// Probabilities are stored in parts-per-million so fault decisions are
/// exact integer comparisons against the LCG stream (bit-deterministic
/// across platforms; no floating-point rounding in the replay path).
const PPM: u64 = 1_000_000;

fn to_ppm(p: f64) -> u32 {
    assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
    (p * PPM as f64).round() as u32
}

/// Per-wire fault configuration of a [`ChaosDriver`] (builder-style).
///
/// The default plan (any seed, no faults enabled) is a transparent
/// wrapper; each knob enables one [`FaultKind`].
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    loss_ppm: u32,
    dup_ppm: u32,
    corrupt_ppm: u32,
    delay_ppm: u32,
    delay_polls: u32,
    stall_period: u64,
    stall_len: u32,
    reorder_depth: usize,
}

impl FaultPlan {
    /// A no-fault plan drawing from `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            loss_ppm: 0,
            dup_ppm: 0,
            corrupt_ppm: 0,
            delay_ppm: 0,
            delay_polls: 0,
            stall_period: 0,
            stall_len: 0,
            reorder_depth: 1,
        }
    }

    /// Drops each delivered packet with probability `p`.
    pub fn loss(mut self, p: f64) -> Self {
        self.loss_ppm = to_ppm(p);
        self
    }

    /// Duplicates each delivered packet with probability `p`.
    pub fn duplicate(mut self, p: f64) -> Self {
        self.dup_ppm = to_ppm(p);
        self
    }

    /// Flips one byte of each delivered packet with probability `p`.
    pub fn corrupt(mut self, p: f64) -> Self {
        self.corrupt_ppm = to_ppm(p);
        self
    }

    /// Holds each delivered packet back for `polls` polls with
    /// probability `p` (latency jitter in poll units).
    pub fn delay(mut self, p: f64, polls: u32) -> Self {
        self.delay_ppm = to_ppm(p);
        self.delay_polls = polls;
        self
    }

    /// Stalls the NIC after every `period` accepted posts: the next
    /// `len` injection attempts are refused (`can_post` false, `post`
    /// returns [`PostError::WouldBlock`]). `period = 0` disables stalls.
    pub fn stall(mut self, period: u64, len: u32) -> Self {
        self.stall_period = period;
        self.stall_len = len;
        self
    }

    /// Buffers up to `depth` packets and releases them in seeded random
    /// order ([`FaultKind::Reorder`]; `depth = 1` preserves order).
    ///
    /// # Panics
    /// Panics if `depth == 0`.
    pub fn reorder(mut self, depth: usize) -> Self {
        assert!(depth > 0, "depth must be at least 1");
        self.reorder_depth = depth;
        self
    }

    /// The reorder-only plan the deprecated `ReorderDriver` maps to.
    pub fn reorder_only(depth: usize, seed: u64) -> Self {
        FaultPlan::new(seed).reorder(depth)
    }

    /// The configured seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// Per-driver injected-fault counters (cheap snapshot in tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Packets dropped.
    pub lost: u64,
    /// Extra copies delivered.
    pub duplicated: u64,
    /// Packets with a flipped byte.
    pub corrupted: u64,
    /// Packets held back at least one poll.
    pub delayed: u64,
    /// Stall windows entered.
    pub stalls: u64,
    /// Packets released out of arrival order.
    pub reordered: u64,
}

impl ChaosStats {
    /// Total injected faults of every kind.
    pub fn total(&self) -> u64 {
        self.lost + self.duplicated + self.corrupted + self.delayed + self.stalls + self.reordered
    }
}

/// A buffered inbound packet, with the polls it must still wait.
struct Held {
    data: Bytes,
    hold: u32,
    /// Arrival index (for reorder detection).
    arrival: u64,
}

struct ChaosState {
    lcg: u64,
    held: VecDeque<Held>,
    /// Accepted posts since the last stall window.
    posts_since_stall: u64,
    /// Injection attempts still refused by the active stall window.
    stall_left: u32,
    /// Next arrival index / last released arrival index.
    arrivals: u64,
    last_released: u64,
    stats: ChaosStats,
}

impl ChaosState {
    /// Numerical Recipes LCG: deterministic, seedable, dependency-free.
    fn next(&mut self) -> u64 {
        self.lcg = self
            .lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.lcg >> 33
    }

    fn roll(&mut self, ppm: u32) -> bool {
        ppm > 0 && self.next() % PPM < ppm as u64
    }
}

/// Wraps a driver with deterministic, seeded fault injection.
///
/// Composable: any [`Driver`] can be wrapped, including another
/// `ChaosDriver` (e.g. independent loss and reorder seeds per layer).
///
/// A chaos driver always exposes **one** VCI context (the trait
/// defaults), whatever the inner driver reports: every fault decision
/// draws from one seeded sequence, and splitting that stream across
/// concurrently polled contexts would make replay depend on thread
/// interleaving. Wrap per-VCI drivers individually if per-context
/// chaos is needed.
pub struct ChaosDriver<D> {
    inner: D,
    plan: FaultPlan,
    chaos: SpinLock<ChaosState>,
}

impl<D: Driver> ChaosDriver<D> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: D, plan: FaultPlan) -> Self {
        let seed = plan.seed | 1;
        ChaosDriver {
            inner,
            plan,
            // Unclassed, like every driver-internal lock: drivers are
            // leaves of the lock hierarchy (`poll`/`post` are called
            // under `core.driver`) and take no classed locks.
            chaos: SpinLock::new(ChaosState {
                lcg: seed,
                held: VecDeque::new(),
                posts_since_stall: 0,
                stall_left: 0,
                arrivals: 0,
                last_released: 0,
                stats: ChaosStats::default(),
            }),
        }
    }

    /// The wrapped driver.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// The active fault plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Snapshot of the faults injected so far.
    pub fn stats(&self) -> ChaosStats {
        self.chaos.lock().stats
    }

    /// Pulls packets from the inner driver into the shuffle buffer,
    /// applying per-packet fault rolls. Rolls happen in a fixed order
    /// (loss, duplicate, corrupt, delay) so a seed replays exactly.
    fn fill(&self, st: &mut ChaosState) {
        while st.held.len() < self.plan.reorder_depth {
            let Some(data) = self.inner.poll() else {
                break;
            };
            if st.roll(self.plan.loss_ppm) {
                st.stats.lost += 1;
                metrics::chaos_lost().incr();
                trace_event!(FaultLoss, data.len());
                continue;
            }
            let copies = if st.roll(self.plan.dup_ppm) {
                st.stats.duplicated += 1;
                metrics::chaos_duplicated().incr();
                trace_event!(FaultDup, data.len());
                2
            } else {
                1
            };
            let data = if st.roll(self.plan.corrupt_ppm) && !data.is_empty() {
                let idx = (st.next() as usize) % data.len();
                let mut buf = BytesMut::from(&data[..]);
                buf[idx] ^= 0xFF;
                st.stats.corrupted += 1;
                metrics::chaos_corrupted().incr();
                trace_event!(FaultCorrupt, idx);
                buf.freeze()
            } else {
                data
            };
            let hold = if st.roll(self.plan.delay_ppm) {
                st.stats.delayed += 1;
                metrics::chaos_delayed().incr();
                trace_event!(FaultDelay, self.plan.delay_polls);
                self.plan.delay_polls
            } else {
                0
            };
            for _ in 0..copies {
                let arrival = st.arrivals;
                st.arrivals += 1;
                st.held.push_back(Held {
                    data: data.clone(),
                    hold,
                    arrival,
                });
            }
        }
    }
}

impl<D: Driver> Driver for ChaosDriver<D> {
    fn caps(&self) -> &DriverCaps {
        self.inner.caps()
    }

    fn can_post(&self) -> bool {
        if self.plan.stall_period > 0 {
            let st = self.chaos.lock();
            if st.stall_left > 0 {
                return false;
            }
        }
        self.inner.can_post()
    }

    fn post(&self, data: Bytes) -> Result<(), PostError> {
        if self.plan.stall_period > 0 {
            let mut st = self.chaos.lock();
            if st.stall_left > 0 {
                st.stall_left -= 1;
                return Err(PostError::WouldBlock);
            }
            st.posts_since_stall += 1;
            if st.posts_since_stall >= self.plan.stall_period {
                st.posts_since_stall = 0;
                st.stall_left = self.plan.stall_len;
                st.stats.stalls += 1;
                metrics::chaos_stalls().incr();
                trace_event!(FaultStall, self.plan.stall_len);
            }
        }
        self.inner.post(data)
    }

    fn poll(&self) -> Option<Bytes> {
        let mut st = self.chaos.lock();
        self.fill(&mut st);
        if st.held.is_empty() {
            return None;
        }
        // Age delayed packets one poll per call.
        for h in st.held.iter_mut() {
            h.hold = h.hold.saturating_sub(1);
        }
        let ready: Vec<usize> = st
            .held
            .iter()
            .enumerate()
            .filter(|(_, h)| h.hold == 0)
            .map(|(i, _)| i)
            .collect();
        if ready.is_empty() {
            return None;
        }
        // Only release out of order while more packets are (or may be)
        // behind; a lone packet is released as-is.
        let pick = if self.plan.reorder_depth > 1 && ready.len() > 1 {
            let n = ready.len();
            ready[(st.next() as usize) % n]
        } else {
            ready[0]
        };
        let held = st.held.remove(pick).expect("index from enumerate");
        if held.arrival < st.last_released {
            st.stats.reordered += 1;
            metrics::chaos_reordered().incr();
            trace_event!(FaultReorder, st.held.len() + 1);
        }
        st.last_released = st.last_released.max(held.arrival);
        Some(held.data)
    }

    fn next_event_ns(&self) -> Option<u64> {
        if self.chaos.lock().held.is_empty() {
            self.inner.next_event_ns()
        } else {
            Some(0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LoopbackDriver;

    fn drain<D: Driver>(d: &D) -> Vec<u8> {
        let mut out = Vec::new();
        let mut idle = 0;
        // Delayed packets return None while aging; keep polling until the
        // buffer stays empty.
        while idle < 64 {
            match d.poll() {
                Some(p) => {
                    out.push(p[0]);
                    idle = 0;
                }
                None => idle += 1,
            }
        }
        out
    }

    fn send<D: Driver>(tx: &D, n: u8) {
        for i in 0..n {
            tx.post(Bytes::copy_from_slice(&[i])).unwrap();
        }
    }

    #[test]
    fn no_fault_plan_is_transparent() {
        let (tx, rx) = LoopbackDriver::pair(64);
        let rx = ChaosDriver::new(rx, FaultPlan::new(1));
        send(&tx, 16);
        assert_eq!(drain(&rx), (0..16).collect::<Vec<u8>>());
        assert_eq!(rx.stats().total(), 0);
    }

    #[test]
    fn loss_drops_deterministically() {
        let run = || {
            let (tx, rx) = LoopbackDriver::pair(256);
            let rx = ChaosDriver::new(rx, FaultPlan::new(7).loss(0.3));
            send(&tx, 200);
            drain(&rx)
        };
        let got = run();
        assert!(got.len() < 200, "some packets must be lost");
        assert!(!got.is_empty(), "not all packets may be lost at 30%");
        assert_eq!(got, run(), "same seed must lose the same packets");
    }

    #[test]
    fn duplication_delivers_copies() {
        let (tx, rx) = LoopbackDriver::pair(256);
        let rx = ChaosDriver::new(rx, FaultPlan::new(3).duplicate(0.5));
        send(&tx, 100);
        let got = drain(&rx);
        assert!(got.len() > 100, "some packets must be duplicated");
        assert_eq!(got.len() as u64 - 100, rx.stats().duplicated);
    }

    #[test]
    fn corruption_flips_exactly_one_byte() {
        let (tx, rx) = LoopbackDriver::pair(16);
        let rx = ChaosDriver::new(rx, FaultPlan::new(5).corrupt(1.0));
        tx.post(Bytes::from_static(b"hello world")).unwrap();
        let got = rx.poll().unwrap();
        let diff: Vec<usize> = got
            .iter()
            .zip(b"hello world".iter())
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(diff.len(), 1, "exactly one byte must differ");
        assert_eq!(rx.stats().corrupted, 1);
    }

    #[test]
    fn delay_holds_packets_across_polls() {
        let (tx, rx) = LoopbackDriver::pair(16);
        let rx = ChaosDriver::new(rx, FaultPlan::new(9).delay(1.0, 3));
        tx.post(Bytes::from_static(b"x")).unwrap();
        assert_eq!(rx.poll(), None);
        assert_eq!(rx.poll(), None);
        assert_eq!(rx.poll(), Some(Bytes::from_static(b"x")));
        assert_eq!(rx.stats().delayed, 1);
    }

    #[test]
    fn stall_refuses_a_window_then_recovers() {
        let (tx, rx) = LoopbackDriver::pair(64);
        let tx = ChaosDriver::new(tx, FaultPlan::new(2).stall(4, 2));
        for i in 0..4u8 {
            tx.post(Bytes::copy_from_slice(&[i])).unwrap();
        }
        // The 4th accepted post opened a stall window of 2 attempts.
        assert!(!tx.can_post());
        assert_eq!(
            tx.post(Bytes::from_static(b"x")),
            Err(PostError::WouldBlock)
        );
        assert_eq!(
            tx.post(Bytes::from_static(b"x")),
            Err(PostError::WouldBlock)
        );
        // Window exhausted; injection works again.
        assert!(tx.can_post());
        tx.post(Bytes::from_static(&[4])).unwrap();
        assert_eq!(tx.stats().stalls, 1);
        let mut got = Vec::new();
        while let Some(p) = rx.poll() {
            got.push(p[0]);
        }
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn reorder_shuffles_but_loses_nothing() {
        let (tx, rx) = LoopbackDriver::pair(64);
        let rx = ChaosDriver::new(rx, FaultPlan::reorder_only(4, 7));
        send(&tx, 32);
        let mut got = drain(&rx);
        assert_ne!(got, (0..32).collect::<Vec<u8>>(), "nothing was reordered");
        assert!(rx.stats().reordered > 0);
        got.sort_unstable();
        assert_eq!(
            got,
            (0..32).collect::<Vec<u8>>(),
            "packets lost or duplicated"
        );
    }

    #[test]
    fn combined_plan_is_deterministic() {
        let run = || {
            let (tx, rx) = LoopbackDriver::pair(512);
            let rx = ChaosDriver::new(
                rx,
                FaultPlan::new(0xC0FFEE)
                    .loss(0.05)
                    .duplicate(0.05)
                    .corrupt(0.05)
                    .delay(0.1, 2)
                    .reorder(4),
            );
            send(&tx, 200);
            (drain(&rx), rx.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn chaos_composes_over_chaos() {
        let (tx, rx) = LoopbackDriver::pair(256);
        let rx = ChaosDriver::new(
            ChaosDriver::new(rx, FaultPlan::new(11).loss(0.2)),
            FaultPlan::reorder_only(4, 13),
        );
        send(&tx, 100);
        let mut got = drain(&rx);
        got.sort_unstable();
        got.dedup();
        assert!(got.len() < 100);
        assert!(rx.inner().stats().lost > 0);
    }

    #[test]
    fn passthrough_caps_and_post() {
        let (tx, rx) = LoopbackDriver::pair(2);
        let tx = ChaosDriver::new(tx, FaultPlan::new(1));
        assert!(tx.caps().thread_safe);
        assert!(tx.can_post());
        tx.post(Bytes::from_static(b"a")).unwrap();
        tx.post(Bytes::from_static(b"b")).unwrap();
        assert_eq!(
            tx.post(Bytes::from_static(b"c")),
            Err(PostError::WouldBlock)
        );
        assert!(rx.poll().is_some());
    }

    #[test]
    #[should_panic(expected = "depth must be at least 1")]
    fn zero_reorder_depth_rejected() {
        let _ = FaultPlan::new(1).reorder(0);
    }

    #[test]
    #[should_panic(expected = "probability must be in [0, 1]")]
    fn out_of_range_probability_rejected() {
        let _ = FaultPlan::new(1).loss(1.5);
    }
}
