//! Bounded lock-free MPMC ring buffer (Vyukov queue).
//!
//! Wires must tolerate concurrent producers and consumers regardless of the
//! communication library's locking mode: even when each node is
//! single-threaded, the two endpoints of a wire live on different threads,
//! and in `MPI_THREAD_MULTIPLE` runs several threads of one node may pump
//! the same driver. The classic Vyukov bounded queue gives us that safety
//! without any lock on the wire itself.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

use nm_sync::CachePadded;

struct Slot<T> {
    /// Sequence number driving the slot state machine:
    /// `seq == pos`        → empty, writable by the enqueuer at `pos`;
    /// `seq == pos + 1`    → full, readable by the dequeuer at `pos`;
    /// otherwise           → another lap is in progress.
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// A bounded multi-producer multi-consumer queue.
pub struct MpmcRing<T> {
    slots: Box<[Slot<T>]>,
    mask: usize,
    head: CachePadded<AtomicUsize>, // dequeue position
    tail: CachePadded<AtomicUsize>, // enqueue position
}

// SAFETY: values move through the queue with release/acquire handoff on the
// slot sequence numbers; T only needs to be Send.
unsafe impl<T: Send> Send for MpmcRing<T> {}
// SAFETY: as above — the slot handoff protocol serializes access to each slot.
unsafe impl<T: Send> Sync for MpmcRing<T> {}

impl<T> MpmcRing<T> {
    /// Creates a ring with capacity `cap`, rounded up to a power of two
    /// and at least 2.
    ///
    /// The minimum of 2 is load-bearing: the Vyukov full-queue detection
    /// compares a slot's lap sequence against the enqueue position, and
    /// with a single slot the "full" and "empty" states are
    /// indistinguishable (`seq - pos == 1 - cap == 0`), so a capacity-1
    /// ring would overwrite unconsumed data and livelock its consumer —
    /// found by the `mpmc_ring_matches_model` property test.
    ///
    /// # Panics
    /// Panics if `cap == 0`.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "capacity must be positive");
        let cap = cap.next_power_of_two().max(2);
        let slots: Box<[Slot<T>]> = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        MpmcRing {
            slots,
            mask: cap - 1,
            head: CachePadded::new(AtomicUsize::new(0)),
            tail: CachePadded::new(AtomicUsize::new(0)),
        }
    }

    /// Maximum number of elements the ring can hold.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Attempts to enqueue; returns `Err(value)` when the ring is full.
    pub fn push(&self, value: T) -> Result<(), T> {
        // relaxed: `tail` is only a hint of where to try; the slot's `seq`
        // (Acquire) is the ground truth that orders the data.
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == pos {
                // Slot is empty for this lap: claim it.
                // relaxed: the CAS only allocates the slot index; the
                // value itself is published by the Release `seq` store.
                match self.tail.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS makes us the unique writer of this
                        // slot for this lap.
                        unsafe { (*slot.value.get()).write(value) };
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(actual) => pos = actual,
                }
            } else if (seq as isize).wrapping_sub(pos as isize) < 0 {
                // The slot still holds last lap's value: the ring is full.
                return Err(value);
            } else {
                // Another producer advanced past us; reload.
                // relaxed: position hint, as above.
                pos = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Attempts to dequeue; `None` when the ring is empty.
    pub fn pop(&self) -> Option<T> {
        // relaxed: `head` is only a hint; the slot's Acquire `seq` load
        // below synchronizes with the producer's Release store.
        let mut pos = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let expected = pos.wrapping_add(1);
            if seq == expected {
                // relaxed: the CAS only claims the slot index; data came
                // in through the Acquire `seq` load above.
                match self.head.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS makes us the unique reader of this
                        // slot for this lap; the slot was written before its
                        // seq was released.
                        let value = unsafe { (*slot.value.get()).assume_init_read() };
                        slot.seq
                            .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                        return Some(value);
                    }
                    Err(actual) => pos = actual,
                }
            } else if (seq as isize).wrapping_sub(expected as isize) < 0 {
                return None; // Empty.
            } else {
                // relaxed: position hint, as above.
                pos = self.head.load(Ordering::Relaxed);
            }
        }
    }

    /// Approximate number of queued elements (racy under concurrency).
    pub fn len(&self) -> usize {
        // relaxed: advisory snapshot, documented racy.
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Relaxed);
        tail.wrapping_sub(head)
    }

    /// Approximately empty (racy under concurrency).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximately full (racy under concurrency).
    pub fn is_full(&self) -> bool {
        self.len() >= self.capacity()
    }
}

impl<T> Drop for MpmcRing<T> {
    fn drop(&mut self) {
        // Drain remaining values so their destructors run.
        while self.pop().is_some() {}
    }
}

impl<T> std::fmt::Debug for MpmcRing<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MpmcRing")
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize as StdAtomicUsize;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_single_thread() {
        let q = MpmcRing::new(4);
        for i in 0..4 {
            q.push(i).unwrap();
        }
        assert!(q.is_full());
        assert_eq!(q.push(99), Err(99));
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        let q = MpmcRing::<u8>::new(5);
        assert_eq!(q.capacity(), 8);
    }

    #[test]
    fn capacity_one_is_promoted_to_two() {
        // Regression: a literal 1-slot Vyukov ring cannot distinguish
        // full from empty and corrupts data.
        let q = MpmcRing::new(1);
        assert_eq!(q.capacity(), 2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.push(3), Err(3), "full ring must reject");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn wraparound_many_laps() {
        let q = MpmcRing::new(2);
        for lap in 0..1000 {
            q.push(lap).unwrap();
            q.push(lap + 1_000_000).unwrap();
            assert_eq!(q.pop(), Some(lap));
            assert_eq!(q.pop(), Some(lap + 1_000_000));
        }
    }

    #[test]
    fn values_dropped_on_queue_drop() {
        static DROPS: StdAtomicUsize = StdAtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let q = MpmcRing::new(8);
            for _ in 0..5 {
                assert!(q.push(D).is_ok());
            }
            drop(q.pop()); // 1 drop here
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn mpmc_no_loss_no_duplication() {
        const PRODUCERS: usize = 4;
        const CONSUMERS: usize = 4;
        const PER_PRODUCER: usize = 2_000;
        let q: Arc<MpmcRing<usize>> = Arc::new(MpmcRing::new(64));
        let seen = Arc::new(
            (0..PRODUCERS * PER_PRODUCER)
                .map(|_| StdAtomicUsize::new(0))
                .collect::<Vec<_>>(),
        );
        let done = Arc::new(StdAtomicUsize::new(0));

        let consumers: Vec<_> = (0..CONSUMERS)
            .map(|_| {
                let q = Arc::clone(&q);
                let seen = Arc::clone(&seen);
                let done = Arc::clone(&done);
                thread::spawn(move || loop {
                    match q.pop() {
                        Some(v) => {
                            seen[v].fetch_add(1, Ordering::Relaxed);
                        }
                        None => {
                            if done.load(Ordering::Acquire) == PRODUCERS && q.pop().is_none() {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();

        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let q = Arc::clone(&q);
                let done = Arc::clone(&done);
                thread::spawn(move || {
                    for i in 0..PER_PRODUCER {
                        let v = p * PER_PRODUCER + i;
                        while q.push(v).is_err() {
                            std::thread::yield_now();
                        }
                    }
                    done.fetch_add(1, Ordering::Release);
                })
            })
            .collect();

        for h in producers.into_iter().chain(consumers) {
            h.join().unwrap();
        }
        for (i, s) in seen.iter().enumerate() {
            assert_eq!(s.load(Ordering::Relaxed), 1, "value {i} seen wrong count");
        }
    }

    #[test]
    fn per_producer_order_is_preserved() {
        // With one producer and one consumer the queue must be strictly FIFO.
        let q = Arc::new(MpmcRing::new(8));
        let q2 = Arc::clone(&q);
        let producer = thread::spawn(move || {
            for i in 0..20_000u64 {
                while q2.push(i).is_err() {
                    std::thread::yield_now();
                }
            }
        });
        let mut expected = 0u64;
        while expected < 20_000 {
            if let Some(v) = q.pop() {
                assert_eq!(v, expected);
                expected += 1;
            }
        }
        producer.join().unwrap();
    }
}
