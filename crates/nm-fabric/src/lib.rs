//! Simulated high-performance network fabric.
//!
//! The paper's testbed is a pair of quad-core Xeon nodes linked by Myri-10G
//! and ConnectX InfiniBand NICs. We have neither, so this crate provides an
//! in-process stand-in that preserves what the experiments actually
//! exercise: a **polling** completion model, an **"NIC idle"** notion that
//! drives the optimization layer, bounded injection queues, calibrated
//! **wire latency and bandwidth**, and (like Myrinet MX) drivers that may
//! declare themselves *not* thread-safe, forcing the library to serialize
//! access to them.
//!
//! * [`ClockSource`] — real (monotonic) or manual (virtual) time; the
//!   discrete-event simulator drives the manual variant.
//! * [`MpmcRing`] — a bounded lock-free MPMC ring (Vyukov queue). Wires
//!   must be internally thread-safe even when the *library* runs in its
//!   "no locking" mode, because the two endpoints always live on
//!   different threads.
//! * [`WireModel`] — latency / bandwidth / per-packet-overhead presets:
//!   [`WireModel::myri_10g`], [`WireModel::connectx_ddr`],
//!   [`WireModel::gige_tcp`], [`WireModel::ideal`].
//! * [`SimNic`] — one endpoint of a point-to-point link.
//! * [`Driver`] — the interface the transfer layer of `nm-core` programs
//!   against, with [`SimNicDriver`] and [`LoopbackDriver`] implementations.
//! * [`Fabric`] — builder for two-node and clique worlds with one or more
//!   rails.

#![warn(missing_docs)]

pub mod chaos;
mod clock;
mod driver;
mod fabric;
pub mod metrics;
mod model;
mod mpmc;
mod nic;
mod reorder;

pub use chaos::{ChaosDriver, ChaosStats, FaultKind, FaultPlan};
pub use clock::ClockSource;
pub use driver::{Driver, DriverCaps, LoopbackDriver, PostError, SimNicDriver};
pub use fabric::{Fabric, NodePorts};
pub use model::WireModel;
pub use mpmc::MpmcRing;
pub use nic::{NicCounters, SimNic};
#[allow(deprecated)]
pub use reorder::ReorderDriver;
