//! Simulated NIC endpoints.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;

use nm_sync::stats::Counter;
use nm_sync::SpinLock;

use crate::{ClockSource, MpmcRing, WireModel};

/// A timestamped packet travelling on a wire.
#[derive(Debug)]
struct WirePacket {
    deliver_at_ns: u64,
    payload: Bytes,
}

/// One direction of a link: a bounded ring plus the time at which the wire
/// becomes free again (packets serialize on the wire).
struct Wire {
    ring: MpmcRing<WirePacket>,
    next_free_ns: AtomicU64,
    /// Payload bytes injected but not yet delivered (wire occupancy).
    occupancy_bytes: AtomicU64,
}

impl Wire {
    fn new(depth: usize) -> Self {
        Wire {
            ring: MpmcRing::new(depth.max(1)),
            next_free_ns: AtomicU64::new(0),
            occupancy_bytes: AtomicU64::new(0),
        }
    }

    /// Reserves wire time for a packet of `tx_ns` serialization cost
    /// starting no earlier than `now`; returns the injection timestamp.
    fn reserve(&self, now: u64, tx_ns: u64) -> u64 {
        // relaxed: initial guess for the CAS loop; failure reloads.
        let mut cur = self.next_free_ns.load(Ordering::Relaxed);
        loop {
            let inject = cur.max(now);
            // relaxed: CAS failure just hands back the fresher value.
            match self.next_free_ns.compare_exchange_weak(
                cur,
                inject + tx_ns,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return inject,
                Err(actual) => cur = actual,
            }
        }
    }
}

/// Packet/byte counters of one NIC endpoint.
#[derive(Debug, Default)]
pub struct NicCounters {
    /// Packets injected into the wire.
    pub tx_packets: Counter,
    /// Payload bytes injected into the wire.
    pub tx_bytes: Counter,
    /// Packets delivered to this endpoint.
    pub rx_packets: Counter,
    /// Payload bytes delivered to this endpoint.
    pub rx_bytes: Counter,
}

/// One independent hardware context of a NIC — a virtual communication
/// interface (VCI) in the sense of Zambre et al.: its own tx/rx wire
/// pair, serialization clock and head-of-line stash, sharing nothing
/// with its siblings on the fast path.
struct VciCtx {
    tx: Arc<Wire>,
    rx: Arc<Wire>,
    /// Head-of-line packet popped from `rx` but not yet deliverable.
    /// Keeping it here preserves wire FIFO order across pollers.
    stash: SpinLock<Option<WirePacket>>,
}

/// One endpoint of a simulated point-to-point link.
///
/// Completion is **polling-based**, like MX or Verbs: nothing happens
/// unless someone calls [`SimNic::poll_recv`]. A packet becomes visible to
/// the receiver only once the clock passes its computed delivery time.
///
/// A NIC owns one or more VCI contexts ([`SimNic::pair_vcis`]); every
/// context has its own injection ring, wire serialization and completion
/// stash, so two threads driving different VCIs never touch shared
/// state. The VCI-less methods address context 0 (injection) or scan all
/// contexts (completion), which on a single-VCI NIC is exactly the
/// pre-VCI behaviour.
pub struct SimNic {
    name: String,
    model: WireModel,
    clock: ClockSource,
    vcis: Vec<VciCtx>,
    counters: NicCounters,
}

/// Error returned when the injection queue is full (NIC busy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxQueueFull;

impl SimNic {
    /// Creates a connected pair of endpoints over two wires of the given
    /// model, sharing `clock`. Equivalent to [`SimNic::pair_vcis`] with
    /// one context.
    pub fn pair(name: &str, model: WireModel, clock: ClockSource) -> (SimNic, SimNic) {
        Self::pair_vcis(name, model, clock, 1)
    }

    /// Creates a connected pair of endpoints with `n_vcis` independent
    /// contexts each. Context `v` of one side is wired to context `v` of
    /// the other; contexts never share a ring or a wire, so they
    /// serialize independently.
    pub fn pair_vcis(
        name: &str,
        model: WireModel,
        clock: ClockSource,
        n_vcis: usize,
    ) -> (SimNic, SimNic) {
        assert!(n_vcis >= 1, "a NIC needs at least one VCI context");
        let mut a_vcis = Vec::with_capacity(n_vcis);
        let mut b_vcis = Vec::with_capacity(n_vcis);
        for _ in 0..n_vcis {
            let a_to_b = Arc::new(Wire::new(model.tx_depth));
            let b_to_a = Arc::new(Wire::new(model.tx_depth));
            a_vcis.push(VciCtx {
                tx: Arc::clone(&a_to_b),
                rx: Arc::clone(&b_to_a),
                stash: SpinLock::new(None),
            });
            b_vcis.push(VciCtx {
                tx: b_to_a,
                rx: a_to_b,
                stash: SpinLock::new(None),
            });
        }
        let a = SimNic {
            name: format!("{name}.0"),
            model,
            clock: clock.clone(),
            vcis: a_vcis,
            counters: NicCounters::default(),
        };
        let b = SimNic {
            name: format!("{name}.1"),
            model,
            clock,
            vcis: b_vcis,
            counters: NicCounters::default(),
        };
        (a, b)
    }

    /// Endpoint name (link name + side).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The wire model of this link.
    pub fn model(&self) -> &WireModel {
        &self.model
    }

    /// The clock used for timestamps.
    pub fn clock(&self) -> &ClockSource {
        &self.clock
    }

    /// Traffic counters.
    pub fn counters(&self) -> &NicCounters {
        &self.counters
    }

    /// Number of independent VCI contexts of this endpoint.
    pub fn num_vcis(&self) -> usize {
        self.vcis.len()
    }

    /// `true` when the injection queue can accept another packet — the
    /// paper's "the NIC becomes idle" condition that triggers the
    /// optimization layer. Addresses VCI context 0.
    pub fn can_post(&self) -> bool {
        self.can_post_vci(0)
    }

    /// [`SimNic::can_post`] for one VCI context: each context has its own
    /// injection ring, so one context's saturation says nothing about
    /// another's.
    pub fn can_post_vci(&self, vci: usize) -> bool {
        self.vcis[vci].tx.ring.len() < self.model.tx_depth
    }

    /// Injects a packet on VCI context 0.
    ///
    /// The payload must fit in the wire MTU (enforced; the transfer layer
    /// is responsible for splitting). Returns [`TxQueueFull`] when the
    /// injection queue is saturated.
    pub fn post_send(&self, payload: Bytes) -> Result<(), TxQueueFull> {
        self.post_send_vci(0, payload)
    }

    /// Injects a packet on one VCI context. Contexts serialize their own
    /// wires independently — no shared lock, ring or wire clock is
    /// touched on this path.
    pub fn post_send_vci(&self, vci: usize, payload: Bytes) -> Result<(), TxQueueFull> {
        assert!(
            payload.len() <= self.model.mtu,
            "payload {} exceeds wire MTU {}",
            payload.len(),
            self.model.mtu
        );
        let ctx = &self.vcis[vci];
        if ctx.tx.ring.len() >= self.model.tx_depth {
            return Err(TxQueueFull);
        }
        let now = self.clock.now_ns();
        let tx_ns = self.model.tx_time_ns(payload.len());
        let inject = ctx.tx.reserve(now, tx_ns);
        let deliver_at_ns = inject + tx_ns + self.model.latency_ns;
        let len = payload.len();
        let pkt = WirePacket {
            deliver_at_ns,
            payload,
        };
        let was_idle = ctx.tx.ring.is_empty();
        // A racing producer may have filled the ring between the depth
        // check and this push; the reserved wire time then stays booked,
        // which only makes the model slightly conservative.
        ctx.tx.ring.push(pkt).map_err(|_| TxQueueFull)?;
        self.counters.tx_packets.incr();
        self.counters.tx_bytes.add(len as u64);
        // relaxed: occupancy is a diagnostic aggregate; the ring push
        // above is what publishes the packet.
        ctx.tx
            .occupancy_bytes
            .fetch_add(len as u64, Ordering::Relaxed);
        crate::metrics::tx_packets().incr();
        crate::metrics::tx_bytes().add(len as u64);
        crate::metrics::inflight_bytes().add(len as i64);
        if self.vcis.len() > 1 {
            // Multi-VCI NICs additionally account their traffic under the
            // fabric.vci.* metrics (single-context NICs keep the pre-VCI
            // metric surface untouched).
            crate::metrics::vci_tx_packets().incr();
            crate::metrics::vci_inflight_bytes().add(len as i64);
        }
        nm_trace::trace_event!(PacketTx, len);
        if was_idle {
            nm_trace::trace_event!(NicIdle, 0u64);
        }
        Ok(())
    }

    /// Polls for a delivered packet; `None` if nothing is deliverable yet.
    /// Scans every VCI context in order (context 0 first), so on a
    /// single-VCI NIC this is exactly the pre-VCI behaviour.
    pub fn poll_recv(&self) -> Option<Bytes> {
        (0..self.vcis.len()).find_map(|v| self.poll_recv_vci(v))
    }

    /// Polls one VCI context for a delivered packet. Completion state
    /// (ring + stash) is per-context, so concurrent pollers on different
    /// VCIs do not contend.
    pub fn poll_recv_vci(&self, vci: usize) -> Option<Bytes> {
        let ctx = &self.vcis[vci];
        let now = self.clock.now_ns();
        let mut stash = ctx.stash.lock();
        let pkt = match stash.take() {
            Some(p) => p,
            None => ctx.rx.ring.pop()?,
        };
        if pkt.deliver_at_ns <= now {
            self.counters.rx_packets.incr();
            self.counters.rx_bytes.add(pkt.payload.len() as u64);
            // relaxed: diagnostic aggregate, mirrors the tx-side add.
            ctx.rx
                .occupancy_bytes
                .fetch_sub(pkt.payload.len() as u64, Ordering::Relaxed);
            crate::metrics::rx_packets().incr();
            crate::metrics::rx_bytes().add(pkt.payload.len() as u64);
            crate::metrics::inflight_bytes().sub(pkt.payload.len() as i64);
            if self.vcis.len() > 1 {
                // Paired multi-VCI endpoints are symmetric, so the vci
                // gauge balances: what the peer added on post is
                // subtracted here on delivery.
                crate::metrics::vci_rx_packets().incr();
                crate::metrics::vci_inflight_bytes().sub(pkt.payload.len() as i64);
            }
            nm_trace::trace_event!(PacketRx, pkt.payload.len());
            if ctx.rx.ring.is_empty() {
                // Last in-flight packet delivered: the sending side's
                // injection queue (this wire) is drained — NIC idle.
                nm_trace::trace_event!(NicIdle, 1u64);
            }
            Some(pkt.payload)
        } else {
            *stash = Some(pkt);
            None
        }
    }

    /// Earliest pending delivery time, if any packet is in flight toward
    /// this endpoint (across all VCI contexts). The discrete-event
    /// simulator uses this to know how far it may advance the virtual
    /// clock.
    pub fn next_delivery_ns(&self) -> Option<u64> {
        (0..self.vcis.len())
            .filter_map(|v| self.next_delivery_ns_vci(v))
            .min()
    }

    /// Earliest pending delivery time on one VCI context.
    pub fn next_delivery_ns_vci(&self, vci: usize) -> Option<u64> {
        let ctx = &self.vcis[vci];
        let mut stash = ctx.stash.lock();
        if stash.is_none() {
            *stash = ctx.rx.ring.pop();
        }
        stash.as_ref().map(|p| p.deliver_at_ns)
    }

    /// `true` if any packet (deliverable or in flight) is queued toward
    /// this endpoint on any VCI context.
    pub fn has_inbound(&self) -> bool {
        (0..self.vcis.len()).any(|v| self.has_inbound_vci(v))
    }

    /// [`SimNic::has_inbound`] for one VCI context.
    pub fn has_inbound_vci(&self, vci: usize) -> bool {
        let ctx = &self.vcis[vci];
        ctx.stash.lock().is_some() || !ctx.rx.ring.is_empty()
    }

    /// Payload bytes this endpoint has injected that the peer has not
    /// yet delivered — this NIC's outbound wire occupancy, summed over
    /// all VCI contexts.
    pub fn inflight_bytes(&self) -> u64 {
        (0..self.vcis.len())
            .map(|v| self.inflight_bytes_vci(v))
            .sum()
    }

    /// Outbound wire occupancy of one VCI context.
    pub fn inflight_bytes_vci(&self, vci: usize) -> u64 {
        // relaxed: advisory snapshot of a diagnostic aggregate.
        self.vcis[vci].tx.occupancy_bytes.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for SimNic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimNic")
            .field("name", &self.name)
            .field("can_post", &self.can_post())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manual_pair(model: WireModel) -> (SimNic, SimNic, ClockSource) {
        let clock = ClockSource::manual();
        let (a, b) = SimNic::pair("test", model, clock.clone());
        (a, b, clock)
    }

    #[test]
    fn packet_not_visible_before_delivery_time() {
        let (a, b, clock) = manual_pair(WireModel::myri_10g());
        a.post_send(Bytes::from_static(b"x")).unwrap();
        assert_eq!(b.poll_recv(), None, "visible too early");
        clock.advance(2_000); // still short of latency + tx time
        assert_eq!(b.poll_recv(), None);
        clock.advance(200); // past 2_000 + 100 + 0.8 ns
        assert_eq!(b.poll_recv(), Some(Bytes::from_static(b"x")));
    }

    #[test]
    fn ideal_wire_delivers_immediately() {
        let (a, b, _clock) = manual_pair(WireModel::ideal());
        a.post_send(Bytes::from_static(b"now")).unwrap();
        assert_eq!(b.poll_recv(), Some(Bytes::from_static(b"now")));
    }

    #[test]
    fn fifo_order_preserved() {
        let (a, b, clock) = manual_pair(WireModel::myri_10g());
        for i in 0..5u8 {
            a.post_send(Bytes::copy_from_slice(&[i])).unwrap();
        }
        clock.advance(1_000_000);
        for i in 0..5u8 {
            assert_eq!(b.poll_recv().unwrap()[0], i);
        }
        assert_eq!(b.poll_recv(), None);
    }

    #[test]
    fn back_to_back_packets_serialize_on_the_wire() {
        let model = WireModel {
            latency_ns: 1_000,
            ns_per_byte: 1.0,
            per_packet_ns: 0,
            mtu: 4096,
            tx_depth: 8,
        };
        let (a, b, clock) = manual_pair(model);
        // Two 1000-byte packets injected at t=0: the second waits for the
        // first to leave the wire, so it lands at 1000(tx)+1000(tx)+1000(lat).
        a.post_send(Bytes::from(vec![0u8; 1000])).unwrap();
        a.post_send(Bytes::from(vec![1u8; 1000])).unwrap();
        clock.advance(2_000);
        assert!(b.poll_recv().is_some(), "first packet at 2 µs");
        assert!(b.poll_recv().is_none(), "second not yet");
        clock.advance(999);
        assert!(b.poll_recv().is_none());
        clock.advance(1);
        assert!(b.poll_recv().is_some(), "second packet at 3 µs");
    }

    #[test]
    fn tx_queue_fills_up() {
        let model = WireModel {
            tx_depth: 2,
            ..WireModel::myri_10g()
        };
        let (a, _b, _clock) = manual_pair(model);
        assert!(a.can_post());
        a.post_send(Bytes::from_static(b"1")).unwrap();
        a.post_send(Bytes::from_static(b"2")).unwrap();
        assert!(!a.can_post());
        assert_eq!(a.post_send(Bytes::from_static(b"3")), Err(TxQueueFull));
    }

    #[test]
    fn draining_receiver_frees_tx_queue() {
        let model = WireModel {
            tx_depth: 1,
            ..WireModel::ideal()
        };
        let (a, b, _clock) = manual_pair(model);
        a.post_send(Bytes::from_static(b"1")).unwrap();
        assert!(!a.can_post());
        assert!(b.poll_recv().is_some());
        assert!(a.can_post());
        a.post_send(Bytes::from_static(b"2")).unwrap();
        assert!(b.poll_recv().is_some());
    }

    #[test]
    #[should_panic(expected = "exceeds wire MTU")]
    fn oversized_payload_panics() {
        let model = WireModel {
            mtu: 8,
            ..WireModel::ideal()
        };
        let (a, _b, _c) = manual_pair(model);
        let _ = a.post_send(Bytes::from(vec![0u8; 9]));
    }

    #[test]
    fn counters_track_traffic() {
        let (a, b, clock) = manual_pair(WireModel::myri_10g());
        a.post_send(Bytes::from(vec![0u8; 100])).unwrap();
        clock.advance(10_000_000);
        b.poll_recv().unwrap();
        assert_eq!(a.counters().tx_packets.get(), 1);
        assert_eq!(a.counters().tx_bytes.get(), 100);
        assert_eq!(b.counters().rx_packets.get(), 1);
        assert_eq!(b.counters().rx_bytes.get(), 100);
    }

    #[test]
    fn inflight_bytes_track_wire_occupancy() {
        let (a, b, clock) = manual_pair(WireModel::myri_10g());
        assert_eq!(a.inflight_bytes(), 0);
        a.post_send(Bytes::from(vec![0u8; 64])).unwrap();
        a.post_send(Bytes::from(vec![0u8; 36])).unwrap();
        assert_eq!(a.inflight_bytes(), 100);
        clock.advance(10_000_000);
        b.poll_recv().unwrap();
        assert_eq!(a.inflight_bytes(), 36);
        b.poll_recv().unwrap();
        assert_eq!(a.inflight_bytes(), 0);
    }

    #[test]
    fn vcis_are_independent_contexts() {
        let model = WireModel {
            tx_depth: 1,
            ..WireModel::ideal()
        };
        let clock = ClockSource::manual();
        let (a, b) = SimNic::pair_vcis("vci", model, clock, 4);
        assert_eq!(a.num_vcis(), 4);
        // Saturating one context leaves the others postable.
        a.post_send_vci(2, Bytes::from_static(b"x")).unwrap();
        assert!(!a.can_post_vci(2));
        for v in [0usize, 1, 3] {
            assert!(a.can_post_vci(v), "vci {v} must be unaffected");
        }
        // Delivery is per-context: the packet arrives on the peer's
        // matching context and nowhere else.
        for v in [0usize, 1, 3] {
            assert_eq!(b.poll_recv_vci(v), None);
        }
        assert_eq!(b.poll_recv_vci(2), Some(Bytes::from_static(b"x")));
    }

    #[test]
    fn vci_wires_serialize_independently() {
        let model = WireModel {
            latency_ns: 1_000,
            ns_per_byte: 1.0,
            per_packet_ns: 0,
            mtu: 4096,
            tx_depth: 8,
        };
        let clock = ClockSource::manual();
        let (a, b) = SimNic::pair_vcis("par", model, clock.clone(), 2);
        // One 1000-byte packet per context at t=0: with a shared wire the
        // second would land at 3 µs; on dedicated per-VCI wires both land
        // at 2 µs.
        a.post_send_vci(0, Bytes::from(vec![0u8; 1000])).unwrap();
        a.post_send_vci(1, Bytes::from(vec![1u8; 1000])).unwrap();
        clock.advance(2_000);
        assert!(b.poll_recv_vci(0).is_some(), "vci 0 at 2 µs");
        assert!(b.poll_recv_vci(1).is_some(), "vci 1 at 2 µs too");
    }

    #[test]
    fn base_methods_aggregate_over_vcis() {
        let clock = ClockSource::manual();
        let (a, b) = SimNic::pair_vcis("agg", WireModel::ideal(), clock, 3);
        assert_eq!(a.inflight_bytes(), 0);
        assert!(!b.has_inbound());
        a.post_send_vci(1, Bytes::from(vec![0u8; 10])).unwrap();
        a.post_send_vci(2, Bytes::from(vec![0u8; 30])).unwrap();
        assert_eq!(a.inflight_bytes(), 40);
        assert_eq!(a.inflight_bytes_vci(1), 10);
        assert_eq!(a.inflight_bytes_vci(2), 30);
        assert!(b.has_inbound());
        assert!(b.next_delivery_ns().is_some());
        // The VCI-less poll scans every context.
        assert!(b.poll_recv().is_some());
        assert!(b.poll_recv().is_some());
        assert_eq!(b.poll_recv(), None);
        assert_eq!(a.inflight_bytes(), 0);
    }

    #[test]
    fn next_delivery_reports_earliest_packet() {
        let (a, b, clock) = manual_pair(WireModel::myri_10g());
        assert_eq!(b.next_delivery_ns(), None);
        a.post_send(Bytes::from_static(b"x")).unwrap();
        let t = b.next_delivery_ns().expect("in-flight packet visible");
        assert!(t >= 2_000);
        clock.advance_to(t);
        assert!(b.poll_recv().is_some());
    }

    #[test]
    fn real_clock_end_to_end() {
        // Warm this thread's trace ring: with the `trace` feature the
        // first emit allocates it, which can take longer than the wire
        // latency and make the packet look like it arrived instantly.
        nm_trace::emit(nm_trace::EventId::NicIdle, 1, 0);
        let clock = ClockSource::real();
        let model = WireModel {
            latency_ns: 200_000, // 200 µs so the test is robust
            ..WireModel::ideal()
        };
        let (a, b) = SimNic::pair("real", model, clock);
        a.post_send(Bytes::from_static(b"ping")).unwrap();
        assert_eq!(b.poll_recv(), None, "should not arrive instantly");
        let t0 = std::time::Instant::now();
        loop {
            if let Some(p) = b.poll_recv() {
                assert_eq!(&p[..], b"ping");
                break;
            }
            assert!(t0.elapsed().as_secs() < 5, "packet never arrived");
            std::hint::spin_loop();
        }
        assert!(t0.elapsed() >= std::time::Duration::from_micros(150));
    }
}
