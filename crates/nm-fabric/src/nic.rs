//! Simulated NIC endpoints.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;

use nm_sync::stats::Counter;
use nm_sync::SpinLock;

use crate::{ClockSource, MpmcRing, WireModel};

/// A timestamped packet travelling on a wire.
#[derive(Debug)]
struct WirePacket {
    deliver_at_ns: u64,
    payload: Bytes,
}

/// One direction of a link: a bounded ring plus the time at which the wire
/// becomes free again (packets serialize on the wire).
struct Wire {
    ring: MpmcRing<WirePacket>,
    next_free_ns: AtomicU64,
    /// Payload bytes injected but not yet delivered (wire occupancy).
    occupancy_bytes: AtomicU64,
}

impl Wire {
    fn new(depth: usize) -> Self {
        Wire {
            ring: MpmcRing::new(depth.max(1)),
            next_free_ns: AtomicU64::new(0),
            occupancy_bytes: AtomicU64::new(0),
        }
    }

    /// Reserves wire time for a packet of `tx_ns` serialization cost
    /// starting no earlier than `now`; returns the injection timestamp.
    fn reserve(&self, now: u64, tx_ns: u64) -> u64 {
        // relaxed: initial guess for the CAS loop; failure reloads.
        let mut cur = self.next_free_ns.load(Ordering::Relaxed);
        loop {
            let inject = cur.max(now);
            // relaxed: CAS failure just hands back the fresher value.
            match self.next_free_ns.compare_exchange_weak(
                cur,
                inject + tx_ns,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return inject,
                Err(actual) => cur = actual,
            }
        }
    }
}

/// Packet/byte counters of one NIC endpoint.
#[derive(Debug, Default)]
pub struct NicCounters {
    /// Packets injected into the wire.
    pub tx_packets: Counter,
    /// Payload bytes injected into the wire.
    pub tx_bytes: Counter,
    /// Packets delivered to this endpoint.
    pub rx_packets: Counter,
    /// Payload bytes delivered to this endpoint.
    pub rx_bytes: Counter,
}

/// One endpoint of a simulated point-to-point link.
///
/// Completion is **polling-based**, like MX or Verbs: nothing happens
/// unless someone calls [`SimNic::poll_recv`]. A packet becomes visible to
/// the receiver only once the clock passes its computed delivery time.
pub struct SimNic {
    name: String,
    model: WireModel,
    clock: ClockSource,
    tx: Arc<Wire>,
    rx: Arc<Wire>,
    counters: NicCounters,
    /// Head-of-line packet popped from `rx` but not yet deliverable.
    /// Keeping it here preserves wire FIFO order across pollers.
    stash: SpinLock<Option<WirePacket>>,
}

/// Error returned when the injection queue is full (NIC busy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxQueueFull;

impl SimNic {
    /// Creates a connected pair of endpoints over two wires of the given
    /// model, sharing `clock`.
    pub fn pair(name: &str, model: WireModel, clock: ClockSource) -> (SimNic, SimNic) {
        let a_to_b = Arc::new(Wire::new(model.tx_depth));
        let b_to_a = Arc::new(Wire::new(model.tx_depth));
        let a = SimNic {
            name: format!("{name}.0"),
            model,
            clock: clock.clone(),
            tx: Arc::clone(&a_to_b),
            rx: Arc::clone(&b_to_a),
            counters: NicCounters::default(),
            stash: SpinLock::new(None),
        };
        let b = SimNic {
            name: format!("{name}.1"),
            model,
            clock,
            tx: b_to_a,
            rx: a_to_b,
            counters: NicCounters::default(),
            stash: SpinLock::new(None),
        };
        (a, b)
    }

    /// Endpoint name (link name + side).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The wire model of this link.
    pub fn model(&self) -> &WireModel {
        &self.model
    }

    /// The clock used for timestamps.
    pub fn clock(&self) -> &ClockSource {
        &self.clock
    }

    /// Traffic counters.
    pub fn counters(&self) -> &NicCounters {
        &self.counters
    }

    /// `true` when the injection queue can accept another packet — the
    /// paper's "the NIC becomes idle" condition that triggers the
    /// optimization layer.
    pub fn can_post(&self) -> bool {
        self.tx.ring.len() < self.model.tx_depth
    }

    /// Injects a packet.
    ///
    /// The payload must fit in the wire MTU (enforced; the transfer layer
    /// is responsible for splitting). Returns [`TxQueueFull`] when the
    /// injection queue is saturated.
    pub fn post_send(&self, payload: Bytes) -> Result<(), TxQueueFull> {
        assert!(
            payload.len() <= self.model.mtu,
            "payload {} exceeds wire MTU {}",
            payload.len(),
            self.model.mtu
        );
        if self.tx.ring.len() >= self.model.tx_depth {
            return Err(TxQueueFull);
        }
        let now = self.clock.now_ns();
        let tx_ns = self.model.tx_time_ns(payload.len());
        let inject = self.tx.reserve(now, tx_ns);
        let deliver_at_ns = inject + tx_ns + self.model.latency_ns;
        let len = payload.len();
        let pkt = WirePacket {
            deliver_at_ns,
            payload,
        };
        let was_idle = self.tx.ring.is_empty();
        // A racing producer may have filled the ring between the depth
        // check and this push; the reserved wire time then stays booked,
        // which only makes the model slightly conservative.
        self.tx.ring.push(pkt).map_err(|_| TxQueueFull)?;
        self.counters.tx_packets.incr();
        self.counters.tx_bytes.add(len as u64);
        // relaxed: occupancy is a diagnostic aggregate; the ring push
        // above is what publishes the packet.
        self.tx
            .occupancy_bytes
            .fetch_add(len as u64, Ordering::Relaxed);
        crate::metrics::tx_packets().incr();
        crate::metrics::tx_bytes().add(len as u64);
        crate::metrics::inflight_bytes().add(len as i64);
        nm_trace::trace_event!(PacketTx, len);
        if was_idle {
            nm_trace::trace_event!(NicIdle, 0u64);
        }
        Ok(())
    }

    /// Polls for a delivered packet; `None` if nothing is deliverable yet.
    pub fn poll_recv(&self) -> Option<Bytes> {
        let now = self.clock.now_ns();
        let mut stash = self.stash.lock();
        let pkt = match stash.take() {
            Some(p) => p,
            None => self.rx.ring.pop()?,
        };
        if pkt.deliver_at_ns <= now {
            self.counters.rx_packets.incr();
            self.counters.rx_bytes.add(pkt.payload.len() as u64);
            // relaxed: diagnostic aggregate, mirrors the tx-side add.
            self.rx
                .occupancy_bytes
                .fetch_sub(pkt.payload.len() as u64, Ordering::Relaxed);
            crate::metrics::rx_packets().incr();
            crate::metrics::rx_bytes().add(pkt.payload.len() as u64);
            crate::metrics::inflight_bytes().sub(pkt.payload.len() as i64);
            nm_trace::trace_event!(PacketRx, pkt.payload.len());
            if self.rx.ring.is_empty() {
                // Last in-flight packet delivered: the sending side's
                // injection queue (this wire) is drained — NIC idle.
                nm_trace::trace_event!(NicIdle, 1u64);
            }
            Some(pkt.payload)
        } else {
            *stash = Some(pkt);
            None
        }
    }

    /// Earliest pending delivery time, if any packet is in flight toward
    /// this endpoint. The discrete-event simulator uses this to know how
    /// far it may advance the virtual clock.
    pub fn next_delivery_ns(&self) -> Option<u64> {
        let mut stash = self.stash.lock();
        if stash.is_none() {
            *stash = self.rx.ring.pop();
        }
        stash.as_ref().map(|p| p.deliver_at_ns)
    }

    /// `true` if any packet (deliverable or in flight) is queued toward
    /// this endpoint.
    pub fn has_inbound(&self) -> bool {
        self.stash.lock().is_some() || !self.rx.ring.is_empty()
    }

    /// Payload bytes this endpoint has injected that the peer has not
    /// yet delivered — this NIC's outbound wire occupancy.
    pub fn inflight_bytes(&self) -> u64 {
        // relaxed: advisory snapshot of a diagnostic aggregate.
        self.tx.occupancy_bytes.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for SimNic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimNic")
            .field("name", &self.name)
            .field("can_post", &self.can_post())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manual_pair(model: WireModel) -> (SimNic, SimNic, ClockSource) {
        let clock = ClockSource::manual();
        let (a, b) = SimNic::pair("test", model, clock.clone());
        (a, b, clock)
    }

    #[test]
    fn packet_not_visible_before_delivery_time() {
        let (a, b, clock) = manual_pair(WireModel::myri_10g());
        a.post_send(Bytes::from_static(b"x")).unwrap();
        assert_eq!(b.poll_recv(), None, "visible too early");
        clock.advance(2_000); // still short of latency + tx time
        assert_eq!(b.poll_recv(), None);
        clock.advance(200); // past 2_000 + 100 + 0.8 ns
        assert_eq!(b.poll_recv(), Some(Bytes::from_static(b"x")));
    }

    #[test]
    fn ideal_wire_delivers_immediately() {
        let (a, b, _clock) = manual_pair(WireModel::ideal());
        a.post_send(Bytes::from_static(b"now")).unwrap();
        assert_eq!(b.poll_recv(), Some(Bytes::from_static(b"now")));
    }

    #[test]
    fn fifo_order_preserved() {
        let (a, b, clock) = manual_pair(WireModel::myri_10g());
        for i in 0..5u8 {
            a.post_send(Bytes::copy_from_slice(&[i])).unwrap();
        }
        clock.advance(1_000_000);
        for i in 0..5u8 {
            assert_eq!(b.poll_recv().unwrap()[0], i);
        }
        assert_eq!(b.poll_recv(), None);
    }

    #[test]
    fn back_to_back_packets_serialize_on_the_wire() {
        let model = WireModel {
            latency_ns: 1_000,
            ns_per_byte: 1.0,
            per_packet_ns: 0,
            mtu: 4096,
            tx_depth: 8,
        };
        let (a, b, clock) = manual_pair(model);
        // Two 1000-byte packets injected at t=0: the second waits for the
        // first to leave the wire, so it lands at 1000(tx)+1000(tx)+1000(lat).
        a.post_send(Bytes::from(vec![0u8; 1000])).unwrap();
        a.post_send(Bytes::from(vec![1u8; 1000])).unwrap();
        clock.advance(2_000);
        assert!(b.poll_recv().is_some(), "first packet at 2 µs");
        assert!(b.poll_recv().is_none(), "second not yet");
        clock.advance(999);
        assert!(b.poll_recv().is_none());
        clock.advance(1);
        assert!(b.poll_recv().is_some(), "second packet at 3 µs");
    }

    #[test]
    fn tx_queue_fills_up() {
        let model = WireModel {
            tx_depth: 2,
            ..WireModel::myri_10g()
        };
        let (a, _b, _clock) = manual_pair(model);
        assert!(a.can_post());
        a.post_send(Bytes::from_static(b"1")).unwrap();
        a.post_send(Bytes::from_static(b"2")).unwrap();
        assert!(!a.can_post());
        assert_eq!(a.post_send(Bytes::from_static(b"3")), Err(TxQueueFull));
    }

    #[test]
    fn draining_receiver_frees_tx_queue() {
        let model = WireModel {
            tx_depth: 1,
            ..WireModel::ideal()
        };
        let (a, b, _clock) = manual_pair(model);
        a.post_send(Bytes::from_static(b"1")).unwrap();
        assert!(!a.can_post());
        assert!(b.poll_recv().is_some());
        assert!(a.can_post());
        a.post_send(Bytes::from_static(b"2")).unwrap();
        assert!(b.poll_recv().is_some());
    }

    #[test]
    #[should_panic(expected = "exceeds wire MTU")]
    fn oversized_payload_panics() {
        let model = WireModel {
            mtu: 8,
            ..WireModel::ideal()
        };
        let (a, _b, _c) = manual_pair(model);
        let _ = a.post_send(Bytes::from(vec![0u8; 9]));
    }

    #[test]
    fn counters_track_traffic() {
        let (a, b, clock) = manual_pair(WireModel::myri_10g());
        a.post_send(Bytes::from(vec![0u8; 100])).unwrap();
        clock.advance(10_000_000);
        b.poll_recv().unwrap();
        assert_eq!(a.counters().tx_packets.get(), 1);
        assert_eq!(a.counters().tx_bytes.get(), 100);
        assert_eq!(b.counters().rx_packets.get(), 1);
        assert_eq!(b.counters().rx_bytes.get(), 100);
    }

    #[test]
    fn inflight_bytes_track_wire_occupancy() {
        let (a, b, clock) = manual_pair(WireModel::myri_10g());
        assert_eq!(a.inflight_bytes(), 0);
        a.post_send(Bytes::from(vec![0u8; 64])).unwrap();
        a.post_send(Bytes::from(vec![0u8; 36])).unwrap();
        assert_eq!(a.inflight_bytes(), 100);
        clock.advance(10_000_000);
        b.poll_recv().unwrap();
        assert_eq!(a.inflight_bytes(), 36);
        b.poll_recv().unwrap();
        assert_eq!(a.inflight_bytes(), 0);
    }

    #[test]
    fn next_delivery_reports_earliest_packet() {
        let (a, b, clock) = manual_pair(WireModel::myri_10g());
        assert_eq!(b.next_delivery_ns(), None);
        a.post_send(Bytes::from_static(b"x")).unwrap();
        let t = b.next_delivery_ns().expect("in-flight packet visible");
        assert!(t >= 2_000);
        clock.advance_to(t);
        assert!(b.poll_recv().is_some());
    }

    #[test]
    fn real_clock_end_to_end() {
        // Warm this thread's trace ring: with the `trace` feature the
        // first emit allocates it, which can take longer than the wire
        // latency and make the packet look like it arrived instantly.
        nm_trace::emit(nm_trace::EventId::NicIdle, 1, 0);
        let clock = ClockSource::real();
        let model = WireModel {
            latency_ns: 200_000, // 200 µs so the test is robust
            ..WireModel::ideal()
        };
        let (a, b) = SimNic::pair("real", model, clock);
        a.post_send(Bytes::from_static(b"ping")).unwrap();
        assert_eq!(b.poll_recv(), None, "should not arrive instantly");
        let t0 = std::time::Instant::now();
        loop {
            if let Some(p) = b.poll_recv() {
                assert_eq!(&p[..], b"ping");
                break;
            }
            assert!(t0.elapsed().as_secs() < 5, "packet never arrived");
            std::hint::spin_loop();
        }
        assert!(t0.elapsed() >= std::time::Duration::from_micros(150));
    }
}
