//! Time sources: real monotonic time and manual (virtual) time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A nanosecond clock the fabric timestamps packets with.
///
/// Cloning is cheap; all clones of a manual clock share the same time.
#[derive(Clone, Debug)]
pub enum ClockSource {
    /// Wall-clock (monotonic) time, relative to clock creation.
    Real(Instant),
    /// Virtual time advanced explicitly — the discrete-event simulator's
    /// clock. Never advances on its own.
    Manual(Arc<AtomicU64>),
}

impl ClockSource {
    /// A real monotonic clock starting at 0 now.
    pub fn real() -> Self {
        ClockSource::Real(Instant::now())
    }

    /// A virtual clock starting at 0.
    pub fn manual() -> Self {
        ClockSource::Manual(Arc::new(AtomicU64::new(0)))
    }

    /// Current time in nanoseconds.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        match self {
            ClockSource::Real(base) => base.elapsed().as_nanos() as u64,
            ClockSource::Manual(t) => t.load(Ordering::Acquire),
        }
    }

    /// Advances a manual clock by `ns`, returning the new time.
    ///
    /// # Panics
    /// Panics on a real clock — real time cannot be advanced.
    pub fn advance(&self, ns: u64) -> u64 {
        match self {
            ClockSource::Manual(t) => t.fetch_add(ns, Ordering::AcqRel) + ns,
            ClockSource::Real(_) => panic!("cannot advance a real clock"),
        }
    }

    /// Sets a manual clock to `ns` if that moves it forward.
    ///
    /// # Panics
    /// Panics on a real clock.
    pub fn advance_to(&self, ns: u64) {
        match self {
            ClockSource::Manual(t) => {
                t.fetch_max(ns, Ordering::AcqRel);
            }
            ClockSource::Real(_) => panic!("cannot advance a real clock"),
        }
    }

    /// `true` for a virtual clock.
    pub fn is_manual(&self) -> bool {
        matches!(self, ClockSource::Manual(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_moves_forward() {
        let c = ClockSource::real();
        let a = c.now_ns();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(c.now_ns() > a);
    }

    #[test]
    fn manual_clock_only_moves_when_advanced() {
        let c = ClockSource::manual();
        assert_eq!(c.now_ns(), 0);
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.advance(10), 10);
        assert_eq!(c.now_ns(), 10);
        c.advance_to(5); // backwards: no-op
        assert_eq!(c.now_ns(), 10);
        c.advance_to(99);
        assert_eq!(c.now_ns(), 99);
    }

    #[test]
    fn manual_clones_share_time() {
        let c = ClockSource::manual();
        let c2 = c.clone();
        c.advance(42);
        assert_eq!(c2.now_ns(), 42);
    }

    #[test]
    #[should_panic(expected = "cannot advance")]
    fn advancing_real_clock_panics() {
        ClockSource::real().advance(1);
    }
}
