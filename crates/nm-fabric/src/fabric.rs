//! Fabric builder: multi-node, multi-rail worlds.

use std::sync::Arc;

use crate::{ClockSource, Driver, SimNic, SimNicDriver, WireModel};

/// The drivers one node uses to reach one peer — one per rail.
///
/// NewMadeleine's multirail support distributes packets of one logical
/// message across several NICs; a `NodePorts` bundles the per-rail drivers
/// of a single peer connection (the paper's Fig 1 shows two drivers under
/// one transfer layer).
#[derive(Clone)]
pub struct NodePorts {
    rails: Vec<Arc<SimNicDriver>>,
}

impl NodePorts {
    /// Per-rail drivers, as the trait objects `nm-core` consumes.
    pub fn drivers(&self) -> Vec<Arc<dyn Driver>> {
        self.rails
            .iter()
            .map(|d| Arc::clone(d) as Arc<dyn Driver>)
            .collect()
    }

    /// Per-rail concrete drivers (for counter access in benches).
    pub fn sim_drivers(&self) -> &[Arc<SimNicDriver>] {
        &self.rails
    }

    /// Number of rails.
    pub fn num_rails(&self) -> usize {
        self.rails.len()
    }
}

/// Builder for simulated worlds.
pub struct Fabric {
    clock: ClockSource,
}

impl Fabric {
    /// A fabric stamping packets with the given clock.
    pub fn new(clock: ClockSource) -> Self {
        Fabric { clock }
    }

    /// A fabric on real (monotonic) time.
    pub fn real_time() -> Self {
        Self::new(ClockSource::real())
    }

    /// A fabric on a virtual clock (returned alongside for advancing).
    pub fn virtual_time() -> (Self, ClockSource) {
        let clock = ClockSource::manual();
        (Self::new(clock.clone()), clock)
    }

    /// The fabric clock.
    pub fn clock(&self) -> &ClockSource {
        &self.clock
    }

    /// Connects two nodes with one rail per wire model.
    ///
    /// `thread_safe_drivers = false` reproduces the paper's MX situation:
    /// the library must serialize all access to each driver.
    pub fn pair(&self, models: &[WireModel], thread_safe_drivers: bool) -> (NodePorts, NodePorts) {
        self.pair_vcis(models, thread_safe_drivers, 1)
    }

    /// Connects two nodes with one rail per wire model, every rail NIC
    /// carrying `n_vcis` independent VCI contexts (per-context tx/rx
    /// rings and completion polling — the Zambre-style dedicated
    /// communication endpoints).
    pub fn pair_vcis(
        &self,
        models: &[WireModel],
        thread_safe_drivers: bool,
        n_vcis: usize,
    ) -> (NodePorts, NodePorts) {
        assert!(!models.is_empty(), "at least one rail required");
        let mut a_rails = Vec::with_capacity(models.len());
        let mut b_rails = Vec::with_capacity(models.len());
        for (i, model) in models.iter().enumerate() {
            let (na, nb) =
                SimNic::pair_vcis(&format!("rail{i}"), *model, self.clock.clone(), n_vcis);
            a_rails.push(Arc::new(SimNicDriver::new(na, thread_safe_drivers)));
            b_rails.push(Arc::new(SimNicDriver::new(nb, thread_safe_drivers)));
        }
        (NodePorts { rails: a_rails }, NodePorts { rails: b_rails })
    }

    /// Builds a fully connected world of `n` nodes, one rail per model
    /// between every unordered pair.
    ///
    /// Returns `ports[i][j]`: the ports node `i` uses to reach node `j`
    /// (`None` on the diagonal).
    pub fn clique(
        &self,
        n: usize,
        models: &[WireModel],
        thread_safe_drivers: bool,
    ) -> Vec<Vec<Option<NodePorts>>> {
        let mut ports: Vec<Vec<Option<NodePorts>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        #[allow(clippy::needless_range_loop)] // i/j index two rows symmetrically
        for i in 0..n {
            for j in (i + 1)..n {
                let (pi, pj) = self.pair(models, thread_safe_drivers);
                ports[i][j] = Some(pi);
                ports[j][i] = Some(pj);
            }
        }
        ports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn pair_connects_both_ways() {
        let (fabric, clock) = Fabric::virtual_time();
        let (a, b) = fabric.pair(&[WireModel::ideal()], true);
        assert_eq!(a.num_rails(), 1);
        a.drivers()[0].post(Bytes::from_static(b"hi")).unwrap();
        clock.advance(1);
        assert_eq!(b.drivers()[0].poll(), Some(Bytes::from_static(b"hi")));
        b.drivers()[0].post(Bytes::from_static(b"yo")).unwrap();
        assert_eq!(a.drivers()[0].poll(), Some(Bytes::from_static(b"yo")));
    }

    #[test]
    fn multirail_pair_has_independent_rails() {
        let (fabric, _clock) = Fabric::virtual_time();
        let models = [WireModel::ideal(), WireModel::ideal()];
        let (a, b) = fabric.pair(&models, true);
        assert_eq!(a.num_rails(), 2);
        a.drivers()[0].post(Bytes::from_static(b"r0")).unwrap();
        a.drivers()[1].post(Bytes::from_static(b"r1")).unwrap();
        assert_eq!(b.drivers()[0].poll(), Some(Bytes::from_static(b"r0")));
        assert_eq!(b.drivers()[1].poll(), Some(Bytes::from_static(b"r1")));
    }

    #[test]
    fn pair_vcis_wires_matching_contexts() {
        let (fabric, _clock) = Fabric::virtual_time();
        let (a, b) = fabric.pair_vcis(&[WireModel::ideal()], true, 3);
        let (da, db) = (&a.drivers()[0], &b.drivers()[0]);
        assert_eq!(da.num_vcis(), 3);
        da.post_vci(1, Bytes::from_static(b"v1")).unwrap();
        da.post_vci(2, Bytes::from_static(b"v2")).unwrap();
        assert_eq!(db.poll_vci(0), None);
        assert_eq!(db.poll_vci(1), Some(Bytes::from_static(b"v1")));
        assert_eq!(db.poll_vci(2), Some(Bytes::from_static(b"v2")));
    }

    #[test]
    fn clique_full_connectivity() {
        let (fabric, clock) = Fabric::virtual_time();
        let ports = fabric.clique(3, &[WireModel::ideal()], true);
        #[allow(clippy::needless_range_loop)] // i/j double-index the matrix
        for i in 0..3 {
            assert!(ports[i][i].is_none());
            for j in 0..3 {
                if i == j {
                    continue;
                }
                let msg = Bytes::from(format!("{i}->{j}"));
                ports[i][j].as_ref().unwrap().drivers()[0]
                    .post(msg.clone())
                    .unwrap();
                clock.advance(1);
                assert_eq!(ports[j][i].as_ref().unwrap().drivers()[0].poll(), Some(msg));
            }
        }
    }
}
