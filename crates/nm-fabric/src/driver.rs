//! The driver interface the transfer layer programs against.

use std::sync::Arc;

use bytes::Bytes;

use crate::{MpmcRing, NicCounters, SimNic};

/// Static capabilities of a driver.
#[derive(Debug, Clone)]
pub struct DriverCaps {
    /// Driver name (for diagnostics and bench labels).
    pub name: String,
    /// Largest payload one packet may carry.
    pub mtu: usize,
    /// `false` for drivers that, like Myrinet MX in the paper, must never
    /// be entered by two threads at once; the library then serializes all
    /// access to this driver under a per-driver lock even in its most
    /// parallel locking mode.
    pub thread_safe: bool,
}

/// Why a post was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PostError {
    /// The injection queue is full; retry when the NIC is idle again.
    WouldBlock,
}

impl std::fmt::Display for PostError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PostError::WouldBlock => write!(f, "NIC injection queue full"),
        }
    }
}

impl std::error::Error for PostError {}

/// A network driver: polling completion, bounded injection, opaque packets.
///
/// This mirrors the role of the "Network Driver" box of the paper's Fig 1:
/// the transfer layer submits arranged packets here and polls for inbound
/// ones when the NIC is idle.
pub trait Driver: Send + Sync {
    /// Driver capabilities.
    fn caps(&self) -> &DriverCaps;
    /// `true` when another packet can be injected (the NIC is idle).
    fn can_post(&self) -> bool;
    /// Injects one packet (must fit the MTU).
    fn post(&self, data: Bytes) -> Result<(), PostError>;
    /// Polls for one inbound packet.
    fn poll(&self) -> Option<Bytes>;
    /// Earliest pending inbound delivery timestamp (virtual-clock runs).
    fn next_event_ns(&self) -> Option<u64> {
        None
    }

    /// Number of independent VCI contexts this driver exposes. The
    /// transfer layer may drive different contexts from different
    /// threads without mutual serialization. The defaults below make
    /// every single-context driver VCI-addressable: callers must pass
    /// `vci < num_vcis()`, and a driver that does not override this
    /// family routes everything through its base methods.
    fn num_vcis(&self) -> usize {
        1
    }
    /// [`Driver::can_post`] for one VCI context.
    fn can_post_vci(&self, vci: usize) -> bool {
        debug_assert!(vci < self.num_vcis());
        self.can_post()
    }
    /// [`Driver::post`] on one VCI context.
    fn post_vci(&self, vci: usize, data: Bytes) -> Result<(), PostError> {
        debug_assert!(vci < self.num_vcis());
        self.post(data)
    }
    /// [`Driver::poll`] on one VCI context.
    fn poll_vci(&self, vci: usize) -> Option<Bytes> {
        debug_assert!(vci < self.num_vcis());
        self.poll()
    }
    /// [`Driver::next_event_ns`] for one VCI context.
    fn next_event_ns_vci(&self, vci: usize) -> Option<u64> {
        debug_assert!(vci < self.num_vcis());
        self.next_event_ns()
    }
}

/// [`Driver`] backed by a [`SimNic`] endpoint.
pub struct SimNicDriver {
    nic: SimNic,
    caps: DriverCaps,
}

impl SimNicDriver {
    /// Wraps a NIC endpoint. `thread_safe = false` reproduces MX-style
    /// drivers that require external serialization.
    pub fn new(nic: SimNic, thread_safe: bool) -> Self {
        let caps = DriverCaps {
            name: nic.name().to_string(),
            mtu: nic.model().mtu,
            thread_safe,
        };
        SimNicDriver { nic, caps }
    }

    /// The underlying NIC (for counters and clock access).
    pub fn nic(&self) -> &SimNic {
        &self.nic
    }

    /// Traffic counters of the underlying NIC.
    pub fn counters(&self) -> &NicCounters {
        self.nic.counters()
    }
}

impl Driver for SimNicDriver {
    fn caps(&self) -> &DriverCaps {
        &self.caps
    }

    fn can_post(&self) -> bool {
        self.nic.can_post()
    }

    fn post(&self, data: Bytes) -> Result<(), PostError> {
        self.nic.post_send(data).map_err(|_| PostError::WouldBlock)
    }

    fn poll(&self) -> Option<Bytes> {
        self.nic.poll_recv()
    }

    fn next_event_ns(&self) -> Option<u64> {
        self.nic.next_delivery_ns()
    }

    fn num_vcis(&self) -> usize {
        self.nic.num_vcis()
    }

    fn can_post_vci(&self, vci: usize) -> bool {
        self.nic.can_post_vci(vci)
    }

    fn post_vci(&self, vci: usize, data: Bytes) -> Result<(), PostError> {
        self.nic
            .post_send_vci(vci, data)
            .map_err(|_| PostError::WouldBlock)
    }

    fn poll_vci(&self, vci: usize) -> Option<Bytes> {
        self.nic.poll_recv_vci(vci)
    }

    fn next_event_ns_vci(&self, vci: usize) -> Option<u64> {
        self.nic.next_delivery_ns_vci(vci)
    }
}

/// A zero-latency in-process driver pair for protocol unit tests: packets
/// are visible to the peer immediately.
pub struct LoopbackDriver {
    caps: DriverCaps,
    tx: Arc<MpmcRing<Bytes>>,
    rx: Arc<MpmcRing<Bytes>>,
}

impl LoopbackDriver {
    /// Creates a connected pair with the given queue depth.
    pub fn pair(depth: usize) -> (LoopbackDriver, LoopbackDriver) {
        let ab = Arc::new(MpmcRing::new(depth));
        let ba = Arc::new(MpmcRing::new(depth));
        let caps = |side: &str| DriverCaps {
            name: format!("loopback.{side}"),
            mtu: usize::MAX,
            thread_safe: true,
        };
        (
            LoopbackDriver {
                caps: caps("0"),
                tx: Arc::clone(&ab),
                rx: Arc::clone(&ba),
            },
            LoopbackDriver {
                caps: caps("1"),
                tx: ba,
                rx: ab,
            },
        )
    }
}

impl Driver for LoopbackDriver {
    fn caps(&self) -> &DriverCaps {
        &self.caps
    }

    fn can_post(&self) -> bool {
        !self.tx.is_full()
    }

    fn post(&self, data: Bytes) -> Result<(), PostError> {
        self.tx.push(data).map_err(|_| PostError::WouldBlock)
    }

    fn poll(&self) -> Option<Bytes> {
        self.rx.pop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClockSource, WireModel};

    #[test]
    fn loopback_round_trip() {
        let (a, b) = LoopbackDriver::pair(8);
        a.post(Bytes::from_static(b"ping")).unwrap();
        assert_eq!(b.poll(), Some(Bytes::from_static(b"ping")));
        b.post(Bytes::from_static(b"pong")).unwrap();
        assert_eq!(a.poll(), Some(Bytes::from_static(b"pong")));
        assert_eq!(a.poll(), None);
    }

    #[test]
    fn loopback_backpressure() {
        let (a, b) = LoopbackDriver::pair(2);
        a.post(Bytes::from_static(b"1")).unwrap();
        a.post(Bytes::from_static(b"2")).unwrap();
        assert!(!a.can_post());
        assert_eq!(a.post(Bytes::from_static(b"3")), Err(PostError::WouldBlock));
        b.poll().unwrap();
        assert!(a.can_post());
    }

    #[test]
    fn simnic_driver_exposes_caps() {
        let clock = ClockSource::manual();
        let (na, _nb) = SimNic::pair("mx", WireModel::myri_10g(), clock);
        let d = SimNicDriver::new(na, false);
        assert_eq!(d.caps().mtu, 32 * 1024);
        assert!(!d.caps().thread_safe);
        assert!(d.caps().name.starts_with("mx"));
    }

    #[test]
    fn default_vci_surface_routes_to_base_methods() {
        let (a, b) = LoopbackDriver::pair(8);
        assert_eq!(a.num_vcis(), 1);
        assert!(a.can_post_vci(0));
        a.post_vci(0, Bytes::from_static(b"v0")).unwrap();
        assert_eq!(b.poll_vci(0), Some(Bytes::from_static(b"v0")));
        assert_eq!(b.next_event_ns_vci(0), None);
    }

    #[test]
    fn simnic_driver_exposes_multi_vci_contexts() {
        let clock = ClockSource::manual();
        let (na, nb) = SimNic::pair_vcis("mx", WireModel::ideal(), clock, 4);
        let (da, db) = (SimNicDriver::new(na, true), SimNicDriver::new(nb, true));
        assert_eq!(da.num_vcis(), 4);
        da.post_vci(3, Bytes::from_static(b"hi")).unwrap();
        assert_eq!(db.poll_vci(0), None);
        assert_eq!(db.poll_vci(3), Some(Bytes::from_static(b"hi")));
    }

    #[test]
    fn simnic_driver_post_and_poll() {
        let clock = ClockSource::manual();
        let (na, nb) = SimNic::pair("mx", WireModel::myri_10g(), clock.clone());
        let (da, db) = (SimNicDriver::new(na, true), SimNicDriver::new(nb, true));
        da.post(Bytes::from_static(b"data")).unwrap();
        assert_eq!(db.poll(), None);
        clock.advance_to(db.next_event_ns().unwrap());
        assert_eq!(db.poll(), Some(Bytes::from_static(b"data")));
    }
}
