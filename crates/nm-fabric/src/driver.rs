//! The driver interface the transfer layer programs against.

use std::sync::Arc;

use bytes::Bytes;

use crate::{MpmcRing, NicCounters, SimNic};

/// Static capabilities of a driver.
#[derive(Debug, Clone)]
pub struct DriverCaps {
    /// Driver name (for diagnostics and bench labels).
    pub name: String,
    /// Largest payload one packet may carry.
    pub mtu: usize,
    /// `false` for drivers that, like Myrinet MX in the paper, must never
    /// be entered by two threads at once; the library then serializes all
    /// access to this driver under a per-driver lock even in its most
    /// parallel locking mode.
    pub thread_safe: bool,
}

/// Why a post was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PostError {
    /// The injection queue is full; retry when the NIC is idle again.
    WouldBlock,
}

impl std::fmt::Display for PostError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PostError::WouldBlock => write!(f, "NIC injection queue full"),
        }
    }
}

impl std::error::Error for PostError {}

/// A network driver: polling completion, bounded injection, opaque packets.
///
/// This mirrors the role of the "Network Driver" box of the paper's Fig 1:
/// the transfer layer submits arranged packets here and polls for inbound
/// ones when the NIC is idle.
pub trait Driver: Send + Sync {
    /// Driver capabilities.
    fn caps(&self) -> &DriverCaps;
    /// `true` when another packet can be injected (the NIC is idle).
    fn can_post(&self) -> bool;
    /// Injects one packet (must fit the MTU).
    fn post(&self, data: Bytes) -> Result<(), PostError>;
    /// Polls for one inbound packet.
    fn poll(&self) -> Option<Bytes>;
    /// Earliest pending inbound delivery timestamp (virtual-clock runs).
    fn next_event_ns(&self) -> Option<u64> {
        None
    }
}

/// [`Driver`] backed by a [`SimNic`] endpoint.
pub struct SimNicDriver {
    nic: SimNic,
    caps: DriverCaps,
}

impl SimNicDriver {
    /// Wraps a NIC endpoint. `thread_safe = false` reproduces MX-style
    /// drivers that require external serialization.
    pub fn new(nic: SimNic, thread_safe: bool) -> Self {
        let caps = DriverCaps {
            name: nic.name().to_string(),
            mtu: nic.model().mtu,
            thread_safe,
        };
        SimNicDriver { nic, caps }
    }

    /// The underlying NIC (for counters and clock access).
    pub fn nic(&self) -> &SimNic {
        &self.nic
    }

    /// Traffic counters of the underlying NIC.
    pub fn counters(&self) -> &NicCounters {
        self.nic.counters()
    }
}

impl Driver for SimNicDriver {
    fn caps(&self) -> &DriverCaps {
        &self.caps
    }

    fn can_post(&self) -> bool {
        self.nic.can_post()
    }

    fn post(&self, data: Bytes) -> Result<(), PostError> {
        self.nic.post_send(data).map_err(|_| PostError::WouldBlock)
    }

    fn poll(&self) -> Option<Bytes> {
        self.nic.poll_recv()
    }

    fn next_event_ns(&self) -> Option<u64> {
        self.nic.next_delivery_ns()
    }
}

/// A zero-latency in-process driver pair for protocol unit tests: packets
/// are visible to the peer immediately.
pub struct LoopbackDriver {
    caps: DriverCaps,
    tx: Arc<MpmcRing<Bytes>>,
    rx: Arc<MpmcRing<Bytes>>,
}

impl LoopbackDriver {
    /// Creates a connected pair with the given queue depth.
    pub fn pair(depth: usize) -> (LoopbackDriver, LoopbackDriver) {
        let ab = Arc::new(MpmcRing::new(depth));
        let ba = Arc::new(MpmcRing::new(depth));
        let caps = |side: &str| DriverCaps {
            name: format!("loopback.{side}"),
            mtu: usize::MAX,
            thread_safe: true,
        };
        (
            LoopbackDriver {
                caps: caps("0"),
                tx: Arc::clone(&ab),
                rx: Arc::clone(&ba),
            },
            LoopbackDriver {
                caps: caps("1"),
                tx: ba,
                rx: ab,
            },
        )
    }
}

impl Driver for LoopbackDriver {
    fn caps(&self) -> &DriverCaps {
        &self.caps
    }

    fn can_post(&self) -> bool {
        !self.tx.is_full()
    }

    fn post(&self, data: Bytes) -> Result<(), PostError> {
        self.tx.push(data).map_err(|_| PostError::WouldBlock)
    }

    fn poll(&self) -> Option<Bytes> {
        self.rx.pop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClockSource, WireModel};

    #[test]
    fn loopback_round_trip() {
        let (a, b) = LoopbackDriver::pair(8);
        a.post(Bytes::from_static(b"ping")).unwrap();
        assert_eq!(b.poll(), Some(Bytes::from_static(b"ping")));
        b.post(Bytes::from_static(b"pong")).unwrap();
        assert_eq!(a.poll(), Some(Bytes::from_static(b"pong")));
        assert_eq!(a.poll(), None);
    }

    #[test]
    fn loopback_backpressure() {
        let (a, b) = LoopbackDriver::pair(2);
        a.post(Bytes::from_static(b"1")).unwrap();
        a.post(Bytes::from_static(b"2")).unwrap();
        assert!(!a.can_post());
        assert_eq!(a.post(Bytes::from_static(b"3")), Err(PostError::WouldBlock));
        b.poll().unwrap();
        assert!(a.can_post());
    }

    #[test]
    fn simnic_driver_exposes_caps() {
        let clock = ClockSource::manual();
        let (na, _nb) = SimNic::pair("mx", WireModel::myri_10g(), clock);
        let d = SimNicDriver::new(na, false);
        assert_eq!(d.caps().mtu, 32 * 1024);
        assert!(!d.caps().thread_safe);
        assert!(d.caps().name.starts_with("mx"));
    }

    #[test]
    fn simnic_driver_post_and_poll() {
        let clock = ClockSource::manual();
        let (na, nb) = SimNic::pair("mx", WireModel::myri_10g(), clock.clone());
        let (da, db) = (SimNicDriver::new(na, true), SimNicDriver::new(nb, true));
        da.post(Bytes::from_static(b"data")).unwrap();
        assert_eq!(db.poll(), None);
        clock.advance_to(db.next_event_ns().unwrap());
        assert_eq!(db.poll(), Some(Bytes::from_static(b"data")));
    }
}
