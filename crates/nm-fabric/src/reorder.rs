//! A transport wrapper that delivers packets out of order.
//!
//! The paper's NEWMADELEINE applies "dynamic scheduling optimizations on
//! multiple communication flows such as packet reordering" — and multirail
//! distribution inherently reorders packets across NICs. This wrapper
//! injects *within-rail* reordering deterministically, so tests can prove
//! the library's ordered-delivery layer restores per-tag FIFO semantics
//! over an unordered transport.

use std::collections::VecDeque;

use bytes::Bytes;

use nm_sync::SpinLock;

use crate::{Driver, DriverCaps, PostError};

/// Wraps a driver and releases received packets out of order.
///
/// Reordering is deterministic: packets are buffered up to `depth`, and
/// a linear-congruential sequence picks which buffered packet each poll
/// releases. With `depth = 1` behaviour is identical to the inner driver.
pub struct ReorderDriver<D> {
    inner: D,
    depth: usize,
    state: SpinLock<ReorderState>,
}

struct ReorderState {
    held: VecDeque<Bytes>,
    lcg: u64,
}

impl<D: Driver> ReorderDriver<D> {
    /// Wraps `inner`, buffering up to `depth` packets for shuffling.
    ///
    /// # Panics
    /// Panics if `depth == 0`.
    pub fn new(inner: D, depth: usize, seed: u64) -> Self {
        assert!(depth > 0, "depth must be at least 1");
        ReorderDriver {
            inner,
            depth,
            state: SpinLock::new(ReorderState {
                held: VecDeque::new(),
                lcg: seed | 1,
            }),
        }
    }

    /// The wrapped driver.
    pub fn inner(&self) -> &D {
        &self.inner
    }
}

impl ReorderState {
    fn next_index(&mut self, len: usize) -> usize {
        // Numerical Recipes LCG: deterministic, seedable, dependency-free.
        self.lcg = self
            .lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((self.lcg >> 33) as usize) % len
    }
}

impl<D: Driver> Driver for ReorderDriver<D> {
    fn caps(&self) -> &DriverCaps {
        self.inner.caps()
    }

    fn can_post(&self) -> bool {
        self.inner.can_post()
    }

    fn post(&self, data: Bytes) -> Result<(), PostError> {
        self.inner.post(data)
    }

    fn poll(&self) -> Option<Bytes> {
        let mut st = self.state.lock();
        // Fill the shuffle buffer from the inner driver.
        while st.held.len() < self.depth {
            match self.inner.poll() {
                Some(p) => st.held.push_back(p),
                None => break,
            }
        }
        if st.held.is_empty() {
            return None;
        }
        // Only release out of order while more packets are (or may be)
        // behind; a lone packet is released as-is.
        let idx = if st.held.len() > 1 {
            let len = st.held.len();
            st.next_index(len)
        } else {
            0
        };
        st.held.remove(idx)
    }

    fn next_event_ns(&self) -> Option<u64> {
        if self.state.lock().held.is_empty() {
            self.inner.next_event_ns()
        } else {
            Some(0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LoopbackDriver;

    fn drain<D: Driver>(d: &D) -> Vec<u8> {
        let mut out = Vec::new();
        while let Some(p) = d.poll() {
            out.push(p[0]);
        }
        out
    }

    #[test]
    fn depth_one_preserves_order() {
        let (tx, rx) = LoopbackDriver::pair(32);
        let rx = ReorderDriver::new(rx, 1, 42);
        for i in 0..8u8 {
            tx.post(Bytes::copy_from_slice(&[i])).unwrap();
        }
        assert_eq!(drain(&rx), (0..8).collect::<Vec<u8>>());
    }

    #[test]
    fn deeper_buffer_reorders_but_loses_nothing() {
        let (tx, rx) = LoopbackDriver::pair(64);
        let rx = ReorderDriver::new(rx, 4, 7);
        for i in 0..32u8 {
            tx.post(Bytes::copy_from_slice(&[i])).unwrap();
        }
        let mut got = drain(&rx);
        assert_ne!(got, (0..32).collect::<Vec<u8>>(), "nothing was reordered");
        got.sort_unstable();
        assert_eq!(
            got,
            (0..32).collect::<Vec<u8>>(),
            "packets lost or duplicated"
        );
    }

    #[test]
    fn reordering_is_deterministic() {
        let run = || {
            let (tx, rx) = LoopbackDriver::pair(64);
            let rx = ReorderDriver::new(rx, 4, 99);
            for i in 0..16u8 {
                tx.post(Bytes::copy_from_slice(&[i])).unwrap();
            }
            drain(&rx)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn passthrough_caps_and_post() {
        let (tx, rx) = LoopbackDriver::pair(2);
        let tx = ReorderDriver::new(tx, 2, 1);
        assert!(tx.caps().thread_safe);
        assert!(tx.can_post());
        tx.post(Bytes::from_static(b"a")).unwrap();
        tx.post(Bytes::from_static(b"b")).unwrap();
        assert_eq!(
            tx.post(Bytes::from_static(b"c")),
            Err(PostError::WouldBlock)
        );
        assert!(rx.poll().is_some());
    }

    #[test]
    #[should_panic(expected = "depth must be at least 1")]
    fn zero_depth_rejected() {
        let (_tx, rx) = LoopbackDriver::pair(2);
        let _ = ReorderDriver::new(rx, 0, 1);
    }
}
