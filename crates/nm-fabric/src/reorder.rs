//! Deprecated reorder-only transport wrapper.
//!
//! The paper's NEWMADELEINE applies "dynamic scheduling optimizations on
//! multiple communication flows such as packet reordering" — this module
//! used to inject *within-rail* reordering deterministically. That
//! machinery is now one fault kind of the chaos fabric
//! ([`FaultKind::Reorder`](crate::chaos::FaultKind::Reorder)):
//! [`ReorderDriver`] remains as a thin shim over
//! [`ChaosDriver`](crate::chaos::ChaosDriver) with a reorder-only
//! [`FaultPlan`](crate::chaos::FaultPlan), so existing callers and
//! ordered-delivery tests keep working unchanged.

use bytes::Bytes;

use crate::chaos::{ChaosDriver, FaultPlan};
use crate::{Driver, DriverCaps, PostError};

/// Wraps a driver and releases received packets out of order.
///
/// Reordering is deterministic: packets are buffered up to `depth`, and
/// a linear-congruential sequence picks which buffered packet each poll
/// releases. With `depth = 1` behaviour is identical to the inner driver.
#[deprecated(
    since = "0.1.0",
    note = "use ChaosDriver with FaultPlan::reorder_only instead"
)]
pub struct ReorderDriver<D> {
    chaos: ChaosDriver<D>,
}

#[allow(deprecated)]
impl<D: Driver> ReorderDriver<D> {
    /// Wraps `inner`, buffering up to `depth` packets for shuffling.
    ///
    /// # Panics
    /// Panics if `depth == 0`.
    pub fn new(inner: D, depth: usize, seed: u64) -> Self {
        ReorderDriver {
            chaos: ChaosDriver::new(inner, FaultPlan::reorder_only(depth, seed)),
        }
    }

    /// The wrapped driver.
    pub fn inner(&self) -> &D {
        self.chaos.inner()
    }
}

#[allow(deprecated)]
impl<D: Driver> Driver for ReorderDriver<D> {
    fn caps(&self) -> &DriverCaps {
        self.chaos.caps()
    }

    fn can_post(&self) -> bool {
        self.chaos.can_post()
    }

    fn post(&self, data: Bytes) -> Result<(), PostError> {
        self.chaos.post(data)
    }

    fn poll(&self) -> Option<Bytes> {
        self.chaos.poll()
    }

    fn next_event_ns(&self) -> Option<u64> {
        self.chaos.next_event_ns()
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::LoopbackDriver;

    fn drain<D: Driver>(d: &D) -> Vec<u8> {
        let mut out = Vec::new();
        while let Some(p) = d.poll() {
            out.push(p[0]);
        }
        out
    }

    #[test]
    fn depth_one_preserves_order() {
        let (tx, rx) = LoopbackDriver::pair(32);
        let rx = ReorderDriver::new(rx, 1, 42);
        for i in 0..8u8 {
            tx.post(Bytes::copy_from_slice(&[i])).unwrap();
        }
        assert_eq!(drain(&rx), (0..8).collect::<Vec<u8>>());
    }

    #[test]
    fn deeper_buffer_reorders_but_loses_nothing() {
        let (tx, rx) = LoopbackDriver::pair(64);
        let rx = ReorderDriver::new(rx, 4, 7);
        for i in 0..32u8 {
            tx.post(Bytes::copy_from_slice(&[i])).unwrap();
        }
        let mut got = drain(&rx);
        assert_ne!(got, (0..32).collect::<Vec<u8>>(), "nothing was reordered");
        got.sort_unstable();
        assert_eq!(
            got,
            (0..32).collect::<Vec<u8>>(),
            "packets lost or duplicated"
        );
    }

    #[test]
    fn reordering_is_deterministic() {
        let run = || {
            let (tx, rx) = LoopbackDriver::pair(64);
            let rx = ReorderDriver::new(rx, 4, 99);
            for i in 0..16u8 {
                tx.post(Bytes::copy_from_slice(&[i])).unwrap();
            }
            drain(&rx)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn passthrough_caps_and_post() {
        let (tx, rx) = LoopbackDriver::pair(2);
        let tx = ReorderDriver::new(tx, 2, 1);
        assert!(tx.caps().thread_safe);
        assert!(tx.can_post());
        tx.post(Bytes::from_static(b"a")).unwrap();
        tx.post(Bytes::from_static(b"b")).unwrap();
        assert_eq!(
            tx.post(Bytes::from_static(b"c")),
            Err(PostError::WouldBlock)
        );
        assert!(rx.poll().is_some());
    }

    #[test]
    #[should_panic(expected = "depth must be at least 1")]
    fn zero_depth_rejected() {
        let (_tx, rx) = LoopbackDriver::pair(2);
        let _ = ReorderDriver::new(rx, 0, 1);
    }
}
