//! Always-on traffic metrics for the simulated fabric.
//!
//! Global aggregates over every NIC endpoint, cached handles into
//! [`nm_metrics::metrics`]. The packet/byte counters yield wire rates on
//! snapshot (`fabric.tx_bytes.per_sec` is the injected bandwidth); the
//! in-flight gauge is the stack-wide wire occupancy — bytes injected but
//! not yet delivered, summed over all links. Per-NIC occupancy is
//! queryable directly through [`crate::SimNic::inflight_bytes`].

use std::sync::{Arc, OnceLock};

use nm_metrics::{Counter, Gauge};

macro_rules! global_counter {
    ($fn_name:ident, $metric:literal, $doc:literal) => {
        #[doc = $doc]
        pub fn $fn_name() -> &'static Arc<Counter> {
            static C: OnceLock<Arc<Counter>> = OnceLock::new();
            C.get_or_init(|| nm_metrics::metrics().counter($metric))
        }
    };
}

global_counter!(
    tx_packets,
    "fabric.tx_packets",
    "Packets injected into any wire."
);
global_counter!(
    tx_bytes,
    "fabric.tx_bytes",
    "Payload bytes injected into any wire."
);
global_counter!(
    rx_packets,
    "fabric.rx_packets",
    "Packets delivered by any NIC endpoint."
);
global_counter!(
    rx_bytes,
    "fabric.rx_bytes",
    "Payload bytes delivered by any NIC endpoint."
);

global_counter!(
    chaos_lost,
    "fabric.chaos.lost",
    "Packets dropped by chaos fault injection."
);
global_counter!(
    chaos_duplicated,
    "fabric.chaos.duplicated",
    "Extra packet copies delivered by chaos fault injection."
);
global_counter!(
    chaos_corrupted,
    "fabric.chaos.corrupted",
    "Packets byte-corrupted by chaos fault injection."
);
global_counter!(
    chaos_delayed,
    "fabric.chaos.delayed",
    "Packets held back (jitter) by chaos fault injection."
);
global_counter!(
    chaos_stalls,
    "fabric.chaos.stalls",
    "Transient NIC stall windows opened by chaos fault injection."
);
global_counter!(
    chaos_reordered,
    "fabric.chaos.reordered",
    "Packets released out of arrival order by chaos fault injection."
);

global_counter!(
    vci_tx_packets,
    "fabric.vci.tx_packets",
    "Packets injected through a multi-VCI NIC context."
);
global_counter!(
    vci_rx_packets,
    "fabric.vci.rx_packets",
    "Packets delivered through a multi-VCI NIC context."
);

/// Bytes currently in flight (injected, not yet delivered) across all
/// wires.
pub fn inflight_bytes() -> &'static Arc<Gauge> {
    static G: OnceLock<Arc<Gauge>> = OnceLock::new();
    G.get_or_init(|| nm_metrics::metrics().gauge("fabric.inflight_bytes"))
}

/// Bytes currently in flight on multi-VCI NIC contexts. Single-context
/// NICs account only to `fabric.inflight_bytes`; per-VCI occupancy is
/// queryable directly through [`crate::SimNic::inflight_bytes_vci`].
pub fn vci_inflight_bytes() -> &'static Arc<Gauge> {
    static G: OnceLock<Arc<Gauge>> = OnceLock::new();
    G.get_or_init(|| nm_metrics::metrics().gauge("fabric.vci.inflight_bytes"))
}
