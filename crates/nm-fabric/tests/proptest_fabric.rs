//! Property-based tests of the simulated fabric.

use bytes::Bytes;
use proptest::prelude::*;

use nm_fabric::{ClockSource, SimNic, WireModel};

fn arbitrary_model() -> impl Strategy<Value = WireModel> {
    (
        0u64..10_000,
        0u64..8,
        0u64..500,
        64usize..65_536,
        1usize..64,
    )
        .prop_map(
            |(latency_ns, ns_per_byte, per_packet_ns, mtu, tx_depth)| WireModel {
                latency_ns,
                ns_per_byte: ns_per_byte as f64 / 2.0,
                per_packet_ns,
                mtu,
                tx_depth,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Delivery preserves FIFO order and payload contents for any model
    /// and any interleaving of sends and clock advances.
    #[test]
    fn fifo_delivery_any_model(
        model in arbitrary_model(),
        script in prop::collection::vec((any::<bool>(), 1usize..256), 1..64),
    ) {
        let clock = ClockSource::manual();
        let (a, b) = SimNic::pair("prop", model, clock.clone());
        let mut sent: std::collections::VecDeque<Vec<u8>> = Default::default();
        let mut received = 0usize;
        let mut seq = 0u8;
        for (do_send, amount) in script {
            if do_send {
                let len = amount.min(model.mtu);
                let payload: Vec<u8> = (0..len).map(|j| seq ^ (j as u8)).collect();
                if a.post_send(Bytes::from(payload.clone())).is_ok() {
                    sent.push_back(payload);
                    seq = seq.wrapping_add(1);
                }
            } else {
                clock.advance(amount as u64 * 1_000);
                while let Some(got) = b.poll_recv() {
                    let expect = sent.pop_front().expect("received more than sent");
                    prop_assert_eq!(&got[..], &expect[..]);
                    received += 1;
                }
            }
        }
        // Drain everything still in flight.
        clock.advance(u32::MAX as u64);
        while let Some(got) = b.poll_recv() {
            let expect = sent.pop_front().expect("received more than sent");
            prop_assert_eq!(&got[..], &expect[..]);
            received += 1;
        }
        prop_assert!(sent.is_empty(), "{} packets lost", sent.len());
        prop_assert_eq!(b.counters().rx_packets.get() as usize, received);
    }

    /// Packets are never visible before `one_way_ns` has elapsed.
    #[test]
    fn never_early(
        model in arbitrary_model(),
        len in 1usize..1_000,
    ) {
        let len = len.min(model.mtu);
        let clock = ClockSource::manual();
        let (a, b) = SimNic::pair("early", model, clock.clone());
        a.post_send(Bytes::from(vec![1u8; len])).unwrap();
        let min_time = model.one_way_ns(len);
        if min_time > 0 {
            clock.advance_to(min_time - 1);
            prop_assert_eq!(b.poll_recv(), None, "delivered before {} ns", min_time);
        }
        clock.advance_to(min_time);
        prop_assert!(b.poll_recv().is_some());
    }

    /// One-way time is monotone in message size.
    #[test]
    fn one_way_monotone(model in arbitrary_model(), a in 0usize..100_000, b in 0usize..100_000) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(model.one_way_ns(lo) <= model.one_way_ns(hi));
    }
}
