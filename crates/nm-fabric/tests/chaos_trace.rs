//! Chaos accounting parity: every [`ChaosStats`] counter must equal the
//! number of matching `Fault*` trace events from the same seeded run —
//! the always-on stats and the trace ring tell one story, fault by
//! fault.
//!
//! Single test on purpose: the trace rings are process-global, and a
//! sibling test draining them concurrently would perturb the counts.

#![cfg(feature = "trace")]

use bytes::Bytes;
use nm_fabric::{ChaosDriver, Driver, FaultPlan, LoopbackDriver, PostError};
use nm_trace::{take_trace, EventId};

/// Polls until the driver stays empty (delayed packets age out).
fn drain<D: Driver>(d: &D) -> usize {
    let mut n = 0;
    let mut idle = 0;
    while idle < 64 {
        match d.poll() {
            Some(_) => {
                n += 1;
                idle = 0;
            }
            None => idle += 1,
        }
    }
    n
}

#[test]
fn chaos_stats_match_fault_trace_event_counts() {
    nm_trace::reset();

    // Receive-side faults: loss, duplication, corruption, delay.
    let (tx, rx) = LoopbackDriver::pair(512);
    let rx = ChaosDriver::new(
        rx,
        FaultPlan::new(0xC0FFEE)
            .loss(0.15)
            .duplicate(0.15)
            .corrupt(0.15)
            .delay(0.15, 3),
    );
    for i in 0..200u8 {
        tx.post(Bytes::copy_from_slice(&[i])).unwrap();
    }
    drain(&rx);
    let rx_stats = rx.stats();

    // Transmit-side stalls: a window opens every 4 accepted posts.
    let (stx, srx) = LoopbackDriver::pair(64);
    let stx = ChaosDriver::new(stx, FaultPlan::new(2).stall(4, 2));
    let mut posted = 0u8;
    let mut attempts = 0;
    while posted < 16 {
        attempts += 1;
        assert!(attempts < 256, "stall windows never close");
        match stx.post(Bytes::copy_from_slice(&[posted])) {
            Ok(()) => posted += 1,
            Err(PostError::WouldBlock) => continue,
            Err(e) => panic!("unexpected post error: {e:?}"),
        }
    }
    drain(&srx);
    let stall_stats = stx.stats();

    // Reordering, alone so the shuffle is the only fault.
    let (rtx, rrx) = LoopbackDriver::pair(64);
    let rrx = ChaosDriver::new(rrx, FaultPlan::reorder_only(4, 7));
    for i in 0..32u8 {
        rtx.post(Bytes::copy_from_slice(&[i])).unwrap();
    }
    drain(&rrx);
    let reorder_stats = rrx.stats();

    // Every stat kind was actually exercised...
    assert!(rx_stats.lost > 0, "loss plan injected nothing");
    assert!(rx_stats.duplicated > 0, "duplicate plan injected nothing");
    assert!(rx_stats.corrupted > 0, "corrupt plan injected nothing");
    assert!(rx_stats.delayed > 0, "delay plan injected nothing");
    assert!(stall_stats.stalls > 0, "stall plan injected nothing");
    assert!(reorder_stats.reordered > 0, "reorder plan injected nothing");

    // ...and each counter agrees with the trace, event for event.
    let trace = take_trace();
    assert_eq!(trace.dropped(), 0, "ring wrapped mid-test");
    let total = |s: &nm_fabric::ChaosStats| {
        [
            (EventId::FaultLoss, s.lost),
            (EventId::FaultDup, s.duplicated),
            (EventId::FaultCorrupt, s.corrupted),
            (EventId::FaultDelay, s.delayed),
            (EventId::FaultStall, s.stalls),
            (EventId::FaultReorder, s.reordered),
        ]
    };
    let mut expected = [0u64; 6];
    for stats in [&rx_stats, &stall_stats, &reorder_stats] {
        for (slot, (_, n)) in expected.iter_mut().zip(total(stats)) {
            *slot += n;
        }
    }
    for ((id, _), want) in total(&rx_stats).into_iter().zip(expected) {
        assert_eq!(trace.count(id), want, "{id:?} drifted from ChaosStats");
    }
}
