//! Real-mode overlap benchmark (Fig 9): non-blocking pingpong with a
//! compute phase between submission and waiting, under the three
//! submission-offload modes.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;

use nm_core::{CommCore, CoreBuilder, CoreConfig, GateId, LockingMode};
use nm_fabric::{Fabric, WireModel};
use nm_progress::{IdlePolicy, OffloadMode, ProgressEngine, ProgressionThread, TaskletEngine};
use nm_sim::experiments::Series;
use nm_sync::WaitStrategy;

use crate::stats::LatencyStats;

/// Overlap benchmark configuration.
#[derive(Clone)]
pub struct OverlapOpts {
    /// Submission path under test.
    pub offload: OffloadMode,
    /// Wire model.
    pub wire: WireModel,
    /// Simulated computation between `isend` and `wait`.
    pub compute: Duration,
    /// Measured iterations.
    pub iters: usize,
    /// Warmup iterations.
    pub warmup: usize,
}

impl Default for OverlapOpts {
    fn default() -> Self {
        OverlapOpts {
            offload: OffloadMode::Inline,
            wire: WireModel::myri_10g(),
            compute: Duration::from_micros(10),
            iters: 50,
            warmup: 5,
        }
    }
}

/// Spin-computes for `d` (models the paper's 10 µs computing phase).
pub fn busy_compute(d: Duration) {
    let deadline = Instant::now() + d;
    while Instant::now() < deadline {
        std::hint::spin_loop();
    }
}

struct OffloadRig {
    core: Arc<CommCore>,
    _progression: Option<ProgressionThread>,
    tasklets: Option<Arc<TaskletEngine>>,
}

/// Builds a core whose submissions follow `offload`, with the background
/// machinery (progression thread draining the offload queue, tasklet
/// runners) it needs.
fn build_offload_core(
    offload: OffloadMode,
    drivers: Vec<Arc<dyn nm_fabric::Driver>>,
) -> OffloadRig {
    let mut config = CoreConfig::default()
        .locking(LockingMode::Fine)
        .offload(offload);
    let tasklets = match offload {
        OffloadMode::Tasklet => {
            let engine = Arc::new(TaskletEngine::new(1, None));
            config = config.tasklet_engine(Arc::clone(&engine));
            Some(engine)
        }
        _ => None,
    };
    let core = CoreBuilder::new(config).add_gate(drivers).build();
    let progression = match offload {
        OffloadMode::IdleCore => {
            // The idle core: a progression thread draining the deferred
            // submission queue.
            let engine = Arc::new(ProgressEngine::new());
            engine.register(Arc::clone(core.offloader()) as _);
            Some(ProgressionThread::spawn(engine, None, IdlePolicy::Yield))
        }
        _ => None,
    };
    OffloadRig {
        core,
        _progression: progression,
        tasklets,
    }
}

/// Measures the overlap pingpong for one message size.
pub fn overlap_latency(opts: &OverlapOpts, size: usize) -> LatencyStats {
    let fabric = Fabric::real_time();
    let (pa, pb) = fabric.pair(&[opts.wire], true);
    let rig_a = build_offload_core(opts.offload, pa.drivers());
    let rig_b = build_offload_core(opts.offload, pb.drivers());
    let (a, b) = (Arc::clone(&rig_a.core), Arc::clone(&rig_b.core));

    let total = opts.warmup + opts.iters;
    let b2 = Arc::clone(&b);
    let echo = std::thread::spawn(move || {
        for _ in 0..total {
            let r = b2.irecv(GateId(0), 0).expect("irecv");
            b2.wait(&r, WaitStrategy::Busy).unwrap();
            let data = r.take_data().expect("payload");
            let s = b2.isend(GateId(0), 0, data).expect("isend");
            b2.wait(&s, WaitStrategy::Busy).unwrap();
        }
    });

    let payload = Bytes::from(vec![0x5Au8; size]);
    let mut samples = Vec::with_capacity(opts.iters);
    for i in 0..total {
        let t0 = Instant::now();
        let s = a.isend(GateId(0), 0, payload.clone()).expect("isend");
        busy_compute(opts.compute); // overlapped computation
        a.wait(&s, WaitStrategy::Busy).unwrap();
        let r = a.irecv(GateId(0), 0).expect("irecv");
        a.wait(&r, WaitStrategy::Busy).unwrap();
        if i >= opts.warmup {
            samples.push(t0.elapsed().as_nanos() as u64 / 2);
        }
    }
    echo.join().expect("echo");
    // Tear down tasklet engines (progression threads stop on drop).
    for t in [rig_a.tasklets, rig_b.tasklets].into_iter().flatten() {
        if let Ok(engine) = Arc::try_unwrap(t) {
            engine.shutdown();
        }
    }
    LatencyStats::from_ns(samples)
}

/// Produces Fig 9's series for the given sizes.
pub fn overlap_series(opts: &OverlapOpts, sizes: &[usize]) -> Series {
    Series {
        label: opts.offload.label().to_string(),
        points: sizes
            .iter()
            .map(|&s| (s, overlap_latency(opts, s).median_us()))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(offload: OffloadMode) -> OverlapOpts {
        OverlapOpts {
            offload,
            wire: WireModel::ideal(),
            compute: Duration::from_micros(5),
            iters: 5,
            warmup: 1,
        }
    }

    #[test]
    fn inline_mode_runs() {
        let s = overlap_latency(&quick(OffloadMode::Inline), 2048);
        assert_eq!(s.count(), 5);
        // The compute phase bounds the latency from below: ≥ 2.5 µs
        // one-way for a 5 µs compute.
        assert!(s.min_ns() >= 2_500);
    }

    #[test]
    fn idle_core_mode_runs() {
        let s = overlap_latency(&quick(OffloadMode::IdleCore), 2048);
        assert_eq!(s.count(), 5);
    }

    #[test]
    fn tasklet_mode_runs() {
        let s = overlap_latency(&quick(OffloadMode::Tasklet), 2048);
        assert_eq!(s.count(), 5);
    }

    #[test]
    fn busy_compute_spins_for_the_duration() {
        let t0 = Instant::now();
        busy_compute(Duration::from_millis(2));
        assert!(t0.elapsed() >= Duration::from_millis(2));
    }
}
