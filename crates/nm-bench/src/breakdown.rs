//! Deterministic critical-path breakdown of one message's latency.
//!
//! The observability tentpole's demo experiment: a virtual-clock model
//! of one eager message prices every lifecycle stage from [`SimCosts`]
//! and the Myri-10G wire model, emits the same `Span*` events the real
//! stack emits, and runs them through the *production* assembler
//! ([`nm_obs::assemble`] + [`nm_obs::Breakdown`]). The numbers are
//! exactly reproducible on any host, so `breakdown/<mode>/<component>`
//! records gate in `BENCH_FIGURES.json`, and by construction of the
//! assembler the five components sum exactly to the end-to-end total.
//!
//! Modes mirror the paper's locking comparison:
//!
//! * `singlethread` — no locks anywhere on the path.
//! * `coarse` — one library-wide lock; the peer's busy-polling holds it,
//!   so every leg pays a contended cycle on top of its own.
//! * `fine` — per-shard locks (collect / driver / rx); each leg pays one
//!   uncontended cycle on the shard it touches.
//! * `fine-loss` — `fine` plus one lost frame: the retransmit backoff
//!   appears as a separate component instead of polluting "wire".

use nm_fabric::WireModel;
use nm_obs::{assemble, Breakdown};
use nm_sim::SimCosts;
use nm_trace::{EventId, ThreadTrace, Trace, TraceEvent};

/// The modeled locking modes, in report order.
pub const MODES: [&str; 4] = ["singlethread", "coarse", "fine", "fine-loss"];

/// Payload of the modeled message (a small eager send).
pub const PAYLOAD_BYTES: usize = 64;

/// Retransmit timeout of the `fine-loss` mode, in progression-pass
/// periods (poll pass + idle gap) — the backoff a lost frame sits out
/// before the reliability layer re-injects it.
const RETX_PASSES: u64 = 8;

/// Per-leg lock overhead of a mode: (submit, transmit, delivery).
fn lock_overhead_ns(costs: &SimCosts, mode: &str) -> (u64, u64, u64) {
    let c = costs.lock_cycle_ns;
    match mode {
        "singlethread" => (0, 0, 0),
        // The library-wide lock is also the wait loop's lock: each leg
        // pays its own cycle plus one contended cycle spent waiting for
        // the peer's poll pass to release it (the paper's Fig 3 gap).
        "coarse" => (2 * c, 2 * c, 2 * c),
        // Sharded locks: collect shard, driver section, rx shard — one
        // uncontended cycle each.
        "fine" | "fine-loss" => (c, c, c),
        other => panic!("unknown breakdown mode: {other}"),
    }
}

/// Synthesizes the span-event trace of one eager message under `mode`
/// on a virtual clock starting at 1 ns. Span 1 is the send, span 2 the
/// matched receive; the receive side's events carry the sender's span
/// exactly like the real wire-header join.
pub fn mode_trace(costs: SimCosts, mode: &str) -> Trace {
    let (l_submit, l_tx, l_rx) = lock_overhead_ns(&costs, mode);
    let wire = WireModel::myri_10g();
    let half_submit = costs.submit_ns / 2;
    let send: u64 = 1;
    let recv: u64 = 2;

    let mut events = Vec::new();
    let mut push = |ts: u64, id: EventId, a: u64, b: u64| {
        events.push(TraceEvent { ts, id, a, b });
    };

    // Submit: API entry, collect-queue insertion.
    let t0 = 1;
    push(t0, EventId::SpanSubmit, send, 0);
    let m1 = t0 + l_submit + half_submit + costs.enqueue_ns;
    push(m1, EventId::SpanCollect, send, 1);
    // Transmit: optimization pass arranges the packet, driver injects.
    let m2 = m1 + l_tx + half_submit;
    push(m2, EventId::SpanWireTx, send, 0);
    // Eager sends complete locally on injection.
    push(m2 + costs.enqueue_ns, EventId::SpanComplete, send, 0);
    // Reliability: in fine-loss the first copy is lost; the retransmit
    // timer re-injects after its backoff.
    let last_tx = if mode == "fine-loss" {
        let retx = m2 + RETX_PASSES * (costs.poll_pass_ns + costs.idle_poll_gap_ns);
        push(retx, EventId::SpanRetx, send, 1);
        retx
    } else {
        m2
    };
    // Wire: serialization + propagation, then the receiver's poll loop
    // has to come around (half a pass on average; modeled as one pass).
    let serialize = (PAYLOAD_BYTES as f64 * wire.ns_per_byte) as u64;
    let m4 = last_tx + wire.per_packet_ns + serialize + wire.latency_ns + costs.poll_pass_ns;
    push(m4, EventId::SpanWireRx, send, 1);
    // Delivery: matching scan, rx-shard crossing, completion hand-off.
    let deliver = m4 + costs.match_scan_ns + l_rx;
    push(deliver, EventId::SpanDeliver, send, recv);
    push(deliver + costs.enqueue_ns, EventId::SpanComplete, recv, 0);

    Trace {
        threads: vec![ThreadTrace {
            thread: 0,
            name: format!("breakdown-{mode}"),
            dropped: 0,
            events,
        }],
    }
}

/// The critical-path decomposition of `mode`'s modeled message, via the
/// production assembler.
pub fn mode_breakdown(costs: SimCosts, mode: &str) -> Breakdown {
    let timelines = assemble(&mode_trace(costs, mode));
    let all = Breakdown::all(&timelines);
    assert_eq!(all.len(), 1, "the model emits exactly one send span");
    all[0].1
}

/// `(mode, breakdown)` for every mode, in [`MODES`] order.
pub fn all_breakdowns(costs: SimCosts) -> Vec<(&'static str, Breakdown)> {
    MODES
        .iter()
        .map(|&m| (m, mode_breakdown(costs, m)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_sum_exactly_for_every_mode() {
        for (mode, b) in all_breakdowns(SimCosts::paper()) {
            let sum: u64 = b.components().iter().map(|(_, v)| v).sum();
            assert_eq!(sum, b.total_ns, "mode {mode}");
            assert!(b.total_ns > 0, "mode {mode}");
        }
    }

    #[test]
    fn locking_modes_order_as_the_paper_says() {
        let costs = SimCosts::paper();
        let single = mode_breakdown(costs, "singlethread").total_ns;
        let fine = mode_breakdown(costs, "fine").total_ns;
        let coarse = mode_breakdown(costs, "coarse").total_ns;
        assert!(single < fine, "no locking beats fine-grain");
        assert!(fine < coarse, "fine-grain beats coarse-grain");
    }

    #[test]
    fn loss_shows_up_as_retransmit_not_wire() {
        let costs = SimCosts::paper();
        let fine = mode_breakdown(costs, "fine");
        let loss = mode_breakdown(costs, "fine-loss");
        assert_eq!(fine.retransmit_ns, 0);
        assert!(loss.retransmit_ns > 0);
        assert_eq!(fine.wire_ns, loss.wire_ns, "wire cost is loss-independent");
        assert_eq!(fine.submit_ns, loss.submit_ns);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = mode_breakdown(SimCosts::paper(), "coarse");
        let b = mode_breakdown(SimCosts::paper(), "coarse");
        assert_eq!(a, b);
    }
}
