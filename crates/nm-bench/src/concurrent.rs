//! Real-mode concurrent pingpong (Fig 5).

use std::sync::Arc;

use bytes::Bytes;

use nm_core::GateId;
use nm_sim::experiments::Series;

use crate::pingpong::{build_pair, PingpongOpts};
use crate::stats::LatencyStats;

/// Runs `threads` concurrent pingpongs (distinct tags) over one shared
/// pair of cores; returns per-thread one-way latency stats.
pub fn concurrent_pingpong(opts: &PingpongOpts, size: usize, threads: usize) -> Vec<LatencyStats> {
    assert!(
        opts.locking.thread_safe(),
        "concurrent pingpong requires a thread-safe locking mode"
    );
    let (a, b) = build_pair(opts);
    let total = opts.warmup + opts.iters;
    let wait = opts.wait;

    let mut echoes = Vec::new();
    for t in 0..threads as u64 {
        let b = Arc::clone(&b);
        echoes.push(std::thread::spawn(move || {
            for _ in 0..total {
                let r = b.irecv(GateId(0), t).expect("irecv");
                b.wait(&r, wait).unwrap();
                let data = r.take_data().expect("payload");
                let s = b.isend(GateId(0), t, data).expect("isend");
                b.wait(&s, wait).unwrap();
            }
        }));
    }

    let mut pingers = Vec::new();
    for t in 0..threads as u64 {
        let a = Arc::clone(&a);
        let warmup = opts.warmup;
        pingers.push(std::thread::spawn(move || {
            let payload = Bytes::from(vec![t as u8; size]);
            let mut samples = Vec::new();
            for i in 0..total {
                let t0 = std::time::Instant::now();
                let s = a.isend(GateId(0), t, payload.clone()).expect("isend");
                a.wait(&s, wait).unwrap();
                let r = a.irecv(GateId(0), t).expect("irecv");
                a.wait(&r, wait).unwrap();
                if i >= warmup {
                    samples.push(t0.elapsed().as_nanos() as u64 / 2);
                }
            }
            LatencyStats::from_ns(samples)
        }));
    }

    let stats: Vec<LatencyStats> = pingers
        .into_iter()
        .map(|h| h.join().expect("pinger"))
        .collect();
    for h in echoes {
        h.join().expect("echo");
    }
    stats
}

/// Produces Fig 5's series: per-thread latencies for 2 concurrent
/// pingpongs.
pub fn concurrent_series(opts: &PingpongOpts, label_prefix: &str, sizes: &[usize]) -> Vec<Series> {
    let per_size: Vec<Vec<LatencyStats>> = sizes
        .iter()
        .map(|&s| concurrent_pingpong(opts, s, 2))
        .collect();
    (0..2)
        .map(|t| Series {
            label: format!("{label_prefix} (thread {})", t + 1),
            points: sizes
                .iter()
                .enumerate()
                .map(|(i, &s)| (s, per_size[i][t].median_us()))
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_core::LockingMode;
    use nm_fabric::WireModel;

    fn quick(locking: LockingMode) -> PingpongOpts {
        PingpongOpts {
            locking,
            wire: WireModel::ideal(),
            iters: 5,
            warmup: 1,
            ..PingpongOpts::default()
        }
    }

    #[test]
    fn two_threads_complete_fine() {
        let stats = concurrent_pingpong(&quick(LockingMode::Fine), 32, 2);
        assert_eq!(stats.len(), 2);
        assert!(stats.iter().all(|s| s.count() == 5));
    }

    #[test]
    fn two_threads_complete_coarse() {
        let stats = concurrent_pingpong(&quick(LockingMode::Coarse), 32, 2);
        assert_eq!(stats.len(), 2);
    }

    #[test]
    #[should_panic(expected = "thread-safe locking")]
    fn single_thread_mode_rejected() {
        let _ = concurrent_pingpong(&quick(LockingMode::SingleThread), 32, 2);
    }
}
