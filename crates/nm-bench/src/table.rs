//! Paper-style table and series printing.

use nm_sim::experiments::Series;

/// Formats sizes like the paper's x-axis: `1, 2, …, 1K, 2K, 32K`.
pub fn fmt_size(bytes: usize) -> String {
    if bytes >= 1024 && bytes.is_multiple_of(1024) {
        format!("{}K", bytes / 1024)
    } else {
        bytes.to_string()
    }
}

/// Renders a set of series as a Markdown table: one row per message size,
/// one column per series (the shape of each figure's data).
pub fn series_table(title: &str, series: &[Series]) -> String {
    series_table_with(title, "size (B)", "µs", series)
}

/// [`series_table`] with explicit x-axis and value-unit labels, for
/// figures whose axes are not size-vs-latency (e.g. the message-rate
/// scaling table: flows on x, Mmsg/s in the cells).
pub fn series_table_with(title: &str, xlabel: &str, unit: &str, series: &[Series]) -> String {
    assert!(!series.is_empty(), "no series to print");
    let sizes: Vec<usize> = series[0].points.iter().map(|&(s, _)| s).collect();
    for s in series {
        assert_eq!(
            s.points.iter().map(|&(x, _)| x).collect::<Vec<_>>(),
            sizes,
            "series '{}' has mismatched sizes",
            s.label
        );
    }
    let mut out = String::new();
    out.push_str(&format!("## {title}\n\n"));
    out.push_str(&format!("| {xlabel} |"));
    for s in series {
        out.push_str(&format!(" {} ({unit}) |", s.label));
    }
    out.push('\n');
    out.push_str("|---:|");
    for _ in series {
        out.push_str("---:|");
    }
    out.push('\n');
    for (i, &size) in sizes.iter().enumerate() {
        out.push_str(&format!("| {} |", fmt_size(size)));
        for s in series {
            out.push_str(&format!(" {:.2} |", s.points[i].1));
        }
        out.push('\n');
    }
    out
}

/// Renders series as CSV (`size,label1,label2,…`).
pub fn series_csv(series: &[Series]) -> String {
    assert!(!series.is_empty(), "no series to print");
    let sizes: Vec<usize> = series[0].points.iter().map(|&(s, _)| s).collect();
    let mut out = String::from("size");
    for s in series {
        out.push(',');
        // Commas inside labels would corrupt the CSV.
        out.push_str(&s.label.replace(',', ";"));
    }
    out.push('\n');
    for (i, &size) in sizes.iter().enumerate() {
        out.push_str(&size.to_string());
        for s in series {
            out.push_str(&format!(",{:.4}", s.points[i].1));
        }
        out.push('\n');
    }
    out
}

/// One row of the constants table: paper value vs our measurements.
#[derive(Debug, Clone)]
pub struct ConstantRow {
    /// Mechanism name.
    pub name: String,
    /// The paper's reported value (ns).
    pub paper_ns: u64,
    /// Our value (ns) — measured or simulated.
    pub ours_ns: u64,
}

/// Renders the "Table 1" constants comparison.
pub fn constants_table(title: &str, rows: &[ConstantRow]) -> String {
    let mut out = format!("## {title}\n\n");
    out.push_str("| mechanism | paper (ns) | ours (ns) | ratio |\n");
    out.push_str("|---|---:|---:|---:|\n");
    for r in rows {
        let ratio = if r.paper_ns == 0 {
            "-".to_string()
        } else {
            format!("{:.2}", r.ours_ns as f64 / r.paper_ns as f64)
        };
        out.push_str(&format!(
            "| {} | {} | {} | {} |\n",
            r.name, r.paper_ns, r.ours_ns, ratio
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn serie(label: &str, v: f64) -> Series {
        Series {
            label: label.into(),
            points: vec![(1, v), (2048, v * 2.0)],
        }
    }

    #[test]
    fn size_formatting() {
        assert_eq!(fmt_size(1), "1");
        assert_eq!(fmt_size(512), "512");
        assert_eq!(fmt_size(1024), "1K");
        assert_eq!(fmt_size(32 * 1024), "32K");
        assert_eq!(fmt_size(1025), "1025");
    }

    #[test]
    fn table_has_all_rows_and_columns() {
        let t = series_table("Fig X", &[serie("a", 1.0), serie("b", 3.0)]);
        assert!(t.contains("## Fig X"));
        assert!(t.contains("a (µs)"));
        assert!(t.contains("b (µs)"));
        assert!(t.contains("| 1 |"));
        assert!(t.contains("| 2K |"));
        assert!(t.contains("6.00"));
    }

    #[test]
    fn custom_axis_and_unit_labels() {
        let t = series_table_with("Msgrate", "flows", "Mmsg/s", &[serie("a", 1.0)]);
        assert!(t.contains("| flows |"));
        assert!(t.contains("a (Mmsg/s)"));
        assert!(!t.contains("µs"));
    }

    #[test]
    fn csv_round_trips_sizes() {
        let c = series_csv(&[serie("x", 1.5)]);
        let lines: Vec<&str> = c.lines().collect();
        assert_eq!(lines[0], "size,x");
        assert!(lines[1].starts_with("1,1.5"));
        assert!(lines[2].starts_with("2048,3"));
    }

    #[test]
    #[should_panic(expected = "mismatched sizes")]
    fn mismatched_series_rejected() {
        let a = serie("a", 1.0);
        let b = Series {
            label: "b".into(),
            points: vec![(7, 1.0)],
        };
        let _ = series_table("bad", &[a, b]);
    }

    #[test]
    fn constants_table_shows_ratio() {
        let t = constants_table(
            "Table 1",
            &[ConstantRow {
                name: "lock cycle".into(),
                paper_ns: 70,
                ours_ns: 140,
            }],
        );
        assert!(t.contains("| lock cycle | 70 | 140 | 2.00 |"));
    }
}
