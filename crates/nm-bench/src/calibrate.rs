//! Host calibration of the paper's in-text constants ("Table 1").
//!
//! The paper prices each mechanism: 70 ns per spinlock acquire/release
//! cycle, ~200 ns per PIOMan pass, ~750 ns per blocking context switch.
//! These microbenchmarks measure the same quantities on the host, both to
//! report them next to the paper's and to feed the simulator
//! ([`Calibration::to_sim_costs`]).

use std::sync::Arc;
use std::time::{Duration, Instant};

use nm_progress::{PollOutcome, ProgressEngine};
use nm_sync::{Semaphore, SpinLock, TicketLock};

/// Host-measured primitive costs, in nanoseconds.
#[derive(Debug, Clone, Copy)]
pub struct Calibration {
    /// Uncontended spinlock acquire/release cycle (paper: 70 ns).
    pub lock_cycle_ns: u64,
    /// Uncontended ticket-lock cycle (ablation).
    pub ticket_cycle_ns: u64,
    /// Uncontended `parking_lot::Mutex` cycle (ablation).
    pub mutex_cycle_ns: u64,
    /// One pass through the progression engine with one idle source,
    /// minus the bare source call (paper: ~200 ns).
    pub pioman_pass_ns: u64,
    /// Semaphore block + wake round trip / 2 (paper: ~750 ns).
    pub ctx_switch_ns: u64,
    /// One completion-flag signal + already-set wait.
    pub flag_cycle_ns: u64,
}

fn bench_ns(iters: u64, mut f: impl FnMut()) -> u64 {
    // One warmup pass.
    f();
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    (t0.elapsed().as_nanos() as u64) / iters
}

/// Uncontended spinlock cycle cost.
pub fn lock_cycle_ns() -> u64 {
    let lock = SpinLock::new(0u64);
    bench_ns(200_000, || {
        *lock.lock() += 1;
    })
}

/// Uncontended ticket-lock cycle cost.
pub fn ticket_cycle_ns() -> u64 {
    let lock = TicketLock::new(0u64);
    bench_ns(200_000, || {
        *lock.lock() += 1;
    })
}

/// Uncontended `parking_lot::Mutex` cycle cost.
pub fn mutex_cycle_ns() -> u64 {
    let lock = parking_lot::Mutex::new(0u64);
    bench_ns(200_000, || {
        *lock.lock() += 1;
    })
}

/// Engine-pass overhead: polling one registered idle source through the
/// registry, minus calling the source directly.
pub fn pioman_pass_ns() -> u64 {
    let engine = ProgressEngine::new();
    let source = Arc::new(|| PollOutcome::Idle);
    engine.register(source.clone() as _);
    let via_engine = bench_ns(100_000, || {
        engine.poll_all();
    });
    let direct = bench_ns(100_000, || {
        use nm_progress::PollSource;
        let _ = std::hint::black_box(&source).poll();
    });
    via_engine.saturating_sub(direct)
}

/// Blocking context-switch cost: two threads ping a pair of semaphores;
/// each hop is one block + one wake.
pub fn ctx_switch_ns() -> u64 {
    const HOPS: u64 = 2_000;
    let ping = Arc::new(Semaphore::new(0));
    let pong = Arc::new(Semaphore::new(0));
    let (p2, q2) = (Arc::clone(&ping), Arc::clone(&pong));
    let peer = std::thread::spawn(move || {
        for _ in 0..HOPS {
            p2.acquire();
            q2.release();
        }
    });
    let t0 = Instant::now();
    for _ in 0..HOPS {
        ping.release();
        pong.acquire();
    }
    let elapsed = t0.elapsed();
    peer.join().expect("peer");
    // Each iteration contains two switches (there and back).
    (elapsed.as_nanos() as u64) / (HOPS * 2)
}

/// Contended collect-section cycle through a [`nm_core::LockPolicy`]:
/// `threads` threads hammer the fine-grain collect sections. With
/// `sharded` each thread enters its *own gate's* tx section (the
/// post-sharding layout — no contention by construction); without, all
/// threads pile onto gate 0's section (the seed's single collect lock).
/// Returns the mean ns per enter/exit as seen by one thread.
pub fn collect_cycle_ns(threads: usize, sharded: bool) -> u64 {
    use nm_core::{LockPolicy, LockingMode, SectionKind};
    const OPS: u64 = 50_000;
    let threads = threads.max(1);
    let policy = Arc::new(LockPolicy::new(LockingMode::Fine, threads, 1));
    let barrier = Arc::new(std::sync::Barrier::new(threads + 1));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let policy = Arc::clone(&policy);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let gate = if sharded { t } else { 0 };
                barrier.wait();
                for _ in 0..OPS {
                    let section = policy.enter(SectionKind::CollectTx(gate));
                    std::hint::black_box(&section);
                }
            })
        })
        .collect();
    barrier.wait();
    let t0 = Instant::now();
    for h in handles {
        h.join().expect("collect-cycle worker");
    }
    (t0.elapsed().as_nanos() as u64) / OPS
}

/// Signal + already-set wait cost of a completion flag.
pub fn flag_cycle_ns() -> u64 {
    let flag = nm_sync::CompletionFlag::new();
    bench_ns(100_000, || {
        flag.signal();
        flag.wait(nm_sync::WaitStrategy::Busy);
        flag.reset();
    })
}

/// Runs the whole calibration suite (takes a fraction of a second).
pub fn calibrate() -> Calibration {
    Calibration {
        lock_cycle_ns: lock_cycle_ns(),
        ticket_cycle_ns: ticket_cycle_ns(),
        mutex_cycle_ns: mutex_cycle_ns(),
        pioman_pass_ns: pioman_pass_ns(),
        ctx_switch_ns: ctx_switch_ns(),
        flag_cycle_ns: flag_cycle_ns(),
    }
}

impl Calibration {
    /// Builds simulator costs from the host measurements (unmeasured
    /// fields keep the paper's defaults).
    pub fn to_sim_costs(&self) -> nm_sim::SimCosts {
        nm_sim::SimCosts::paper()
            .with_lock_cycle(self.lock_cycle_ns.max(1))
            .with_ctx_switch(self.ctx_switch_ns.max(1))
            .with_pioman_pass(self.pioman_pass_ns.max(1))
    }

    /// The paper's corresponding constants, for side-by-side printing.
    pub fn paper_reference() -> [(&'static str, u64); 3] {
        [
            ("spinlock acquire/release cycle", 70),
            ("PIOMan pass (lists + locking)", 200),
            ("blocking context switch", 750),
        ]
    }
}

/// Measures how long `f` takes, returned as a [`Duration`].
pub fn time_it(f: impl FnOnce()) -> Duration {
    let t0 = Instant::now();
    f();
    t0.elapsed()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_cycle_is_fast_and_nonzero() {
        let ns = lock_cycle_ns();
        assert!(ns > 0, "cycle cannot be free");
        assert!(ns < 10_000, "uncontended spinlock at {ns} ns is absurd");
    }

    #[test]
    fn engine_pass_costs_something() {
        // The registry walk cannot be cheaper than the bare call.
        let ns = pioman_pass_ns();
        assert!(ns < 100_000, "engine pass at {ns} ns is absurd");
    }

    #[test]
    fn ctx_switch_exceeds_lock_cycle() {
        let switch = ctx_switch_ns();
        let cycle = lock_cycle_ns();
        assert!(
            switch > cycle,
            "a context switch ({switch} ns) must cost more than a lock cycle ({cycle} ns)"
        );
    }

    #[test]
    fn contended_collect_cycle_measures_both_layouts() {
        // No ordering assertion: on an oversubscribed CI box the sharded
        // run can still be preempted into looking slower. Sanity only.
        let sharded = collect_cycle_ns(2, true);
        let global = collect_cycle_ns(2, false);
        assert!(sharded > 0, "sharded cycle cannot be free");
        assert!(global > 0, "global cycle cannot be free");
        assert!(sharded < 1_000_000, "sharded cycle {sharded} ns is absurd");
        assert!(global < 1_000_000, "global cycle {global} ns is absurd");
    }

    #[test]
    fn calibration_feeds_the_simulator() {
        let cal = calibrate();
        let costs = cal.to_sim_costs();
        assert_eq!(costs.lock_cycle_ns, cal.lock_cycle_ns.max(1));
        assert_eq!(costs.ctx_switch_ns, cal.ctx_switch_ns.max(1));
        // Unmeasured fields keep paper defaults.
        assert_eq!(
            costs.idle_poll_gap_ns,
            nm_sim::SimCosts::paper().idle_poll_gap_ns
        );
    }

    #[test]
    fn time_it_measures() {
        let d = time_it(|| std::thread::sleep(Duration::from_millis(3)));
        assert!(d >= Duration::from_millis(3));
    }
}
