//! §3.3's claim: "on a 4-core machine, dedicating one core to
//! communication leads to up to 25 % decrease of the computation power."
//!
//! Measured for real when the host has ≥ 2 cores (N compute threads with
//! and without a dedicated busy-polling thread), and modelled analytically
//! otherwise.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Result of the dedicated-core experiment.
#[derive(Debug, Clone, Copy)]
pub struct ComputeLoss {
    /// Compute iterations/s without the polling thread.
    pub baseline_rate: f64,
    /// Compute iterations/s with one dedicated busy-polling thread.
    pub with_poller_rate: f64,
    /// Cores used for the measurement.
    pub cores: usize,
}

impl ComputeLoss {
    /// Fractional throughput loss in `[0, 1]`.
    pub fn loss(&self) -> f64 {
        if self.baseline_rate <= 0.0 {
            return 0.0;
        }
        (1.0 - self.with_poller_rate / self.baseline_rate).max(0.0)
    }

    /// The analytic model: one of `cores` cores stops computing.
    pub fn analytic(cores: usize) -> f64 {
        assert!(cores > 0);
        1.0 / cores as f64
    }
}

fn compute_kernel(stop: &AtomicBool) -> u64 {
    // A cache-resident integer kernel: iterations are the throughput unit.
    let mut acc: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut iters = 0u64;
    // relaxed: stop flag carries no data; a late observation only extends
    // the measurement window by one batch.
    while !stop.load(Ordering::Relaxed) {
        for _ in 0..1024 {
            acc = acc
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
        }
        iters += 1;
    }
    std::hint::black_box(acc);
    iters
}

fn run_compute(threads: usize, with_poller: bool, window: Duration) -> f64 {
    let stop = Arc::new(AtomicBool::new(false));
    let poller = with_poller.then(|| {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            // The dedicated communication core: pure busy polling.
            // relaxed: stop flag carries no data (see compute_kernel).
            while !stop.load(Ordering::Relaxed) {
                std::hint::spin_loop();
            }
        })
    });
    let workers: Vec<_> = (0..threads)
        .map(|_| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || compute_kernel(&stop))
        })
        .collect();
    let t0 = Instant::now();
    std::thread::sleep(window);
    // relaxed: stop flag carries no data; join() below synchronizes.
    stop.store(true, Ordering::Relaxed);
    let total: u64 = workers.into_iter().map(|h| h.join().expect("worker")).sum();
    if let Some(p) = poller {
        p.join().expect("poller");
    }
    total as f64 / t0.elapsed().as_secs_f64()
}

/// Measures the compute-throughput loss of dedicating one core to
/// busy polling: `cores` compute threads run for `window`, with and
/// without an extra spinning thread competing for the cores.
pub fn measure(cores: usize, window: Duration) -> ComputeLoss {
    let baseline_rate = run_compute(cores, false, window);
    let with_poller_rate = run_compute(cores, true, window);
    ComputeLoss {
        baseline_rate,
        with_poller_rate,
        cores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_quad_core_is_25_percent() {
        assert!((ComputeLoss::analytic(4) - 0.25).abs() < 1e-12);
        assert!((ComputeLoss::analytic(2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn measurement_shows_a_loss() {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let r = measure(cores, Duration::from_millis(150));
        assert!(r.baseline_rate > 0.0);
        assert!(r.with_poller_rate > 0.0);
        // An extra spinning thread on a saturated machine must cost
        // something; exact magnitude depends on the scheduler.
        assert!(
            r.loss() > 0.01,
            "poller cost invisible: baseline {} vs {}",
            r.baseline_rate,
            r.with_poller_rate
        );
        assert!(r.loss() < 0.95);
    }

    #[test]
    fn loss_is_zero_when_rates_equal() {
        let r = ComputeLoss {
            baseline_rate: 100.0,
            with_poller_rate: 100.0,
            cores: 4,
        };
        assert_eq!(r.loss(), 0.0);
    }
}
