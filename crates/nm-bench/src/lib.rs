//! Benchmark harness for the nomad stack.
//!
//! Two measurement modes regenerate the paper's figures:
//!
//! * **Real mode** (this crate) — drives the *actual* library (`nm-core`
//!   over `nm-fabric` NICs) with real threads and real locks and measures
//!   wall-clock latencies. Meaningful on multicore hosts; on a single-CPU
//!   box the busy-wait pingpongs still run correctly but timings are
//!   dominated by preemption.
//! * **Sim mode** (`nm-sim`) — the deterministic virtual-time twin.
//!
//! [`calibrate`] measures the host's primitive costs (lock cycle, context
//! switch, engine pass) so the simulator can be fed host-calibrated
//! constants and cross-checked against real-mode results, and to
//! reproduce the paper's in-text constants ("Table 1").

#![warn(missing_docs)]

pub mod breakdown;
pub mod calibrate;
pub mod compute_loss;
pub mod concurrent;
pub mod fromtrace;
pub mod msgrate;
pub mod overlap;
pub mod pingpong;
pub mod report;
pub mod stats;
pub mod table;

pub use nm_sim::experiments::Series;
