//! Real-mode pingpong runner (Figs 3 and 6).

use std::sync::Arc;

use bytes::Bytes;

use nm_core::{CommCore, CoreBuilder, CoreConfig, GateId, LockingMode};
use nm_fabric::{Fabric, WireModel};
use nm_progress::ProgressEngine;
use nm_sim::experiments::Series;
use nm_sync::WaitStrategy;

use crate::stats::LatencyStats;

/// Pingpong configuration.
#[derive(Clone)]
pub struct PingpongOpts {
    /// Locking mode under test.
    pub locking: LockingMode,
    /// Wire model of the single rail.
    pub wire: WireModel,
    /// Waiting strategy of both endpoints.
    pub wait: WaitStrategy,
    /// Route waiting-side polling through a [`ProgressEngine`] (Fig 6).
    pub via_engine: bool,
    /// Measured iterations per size.
    pub iters: usize,
    /// Warmup iterations per size.
    pub warmup: usize,
}

impl Default for PingpongOpts {
    fn default() -> Self {
        PingpongOpts {
            locking: LockingMode::Fine,
            wire: WireModel::myri_10g(),
            wait: WaitStrategy::Busy,
            via_engine: false,
            iters: 100,
            warmup: 10,
        }
    }
}

/// Builds a connected pair of cores over one rail of `opts.wire`.
pub fn build_pair(opts: &PingpongOpts) -> (Arc<CommCore>, Arc<CommCore>) {
    let fabric = Fabric::real_time();
    let (pa, pb) = fabric.pair(&[opts.wire], true);
    let config = CoreConfig::default().locking(opts.locking);
    let a = CoreBuilder::new(config.clone())
        .add_gate(pa.drivers())
        .build();
    let b = CoreBuilder::new(config).add_gate(pb.drivers()).build();
    (a, b)
}

/// Waits for `req`, polling either the core directly or through an
/// engine (the Fig 6 variant).
fn wait_via(
    core: &Arc<CommCore>,
    engine: Option<&Arc<ProgressEngine>>,
    req: &nm_core::Request,
    wait: WaitStrategy,
) {
    match engine {
        None => core.wait(req, wait).unwrap(),
        Some(engine) => {
            // Polling goes through the engine's registry: its list
            // management and locking ride the critical path.
            let engine = Arc::clone(engine);
            req.flag().wait_with_poll(wait, move || {
                engine.poll_all();
            });
        }
    }
}

/// Measures one-way latency for one message size; returns stats over the
/// measured iterations.
pub fn pingpong_latency(opts: &PingpongOpts, size: usize) -> LatencyStats {
    let (a, b) = build_pair(opts);
    let engine_a = opts.via_engine.then(|| {
        let e = Arc::new(ProgressEngine::new());
        e.register(Arc::clone(&a) as _);
        e
    });
    let engine_b = opts.via_engine.then(|| {
        let e = Arc::new(ProgressEngine::new());
        e.register(Arc::clone(&b) as _);
        e
    });

    let total = opts.warmup + opts.iters;
    let wait = opts.wait;
    let b2 = Arc::clone(&b);
    let echo = std::thread::spawn(move || {
        for _ in 0..total {
            let r = b2.irecv(GateId(0), 0).expect("irecv");
            wait_via(&b2, engine_b.as_ref(), &r, wait);
            let data = r.take_data().expect("payload");
            let s = b2.isend(GateId(0), 0, data).expect("isend");
            wait_via(&b2, engine_b.as_ref(), &s, wait);
        }
    });

    let payload = Bytes::from(vec![0x42u8; size]);
    let mut samples = Vec::with_capacity(opts.iters);
    for i in 0..total {
        let t0 = std::time::Instant::now();
        let s = a.isend(GateId(0), 0, payload.clone()).expect("isend");
        wait_via(&a, engine_a.as_ref(), &s, wait);
        let r = a.irecv(GateId(0), 0).expect("irecv");
        wait_via(&a, engine_a.as_ref(), &r, wait);
        let rtt = t0.elapsed();
        if i >= opts.warmup {
            samples.push(rtt.as_nanos() as u64 / 2); // one-way
        }
    }
    echo.join().expect("echo thread");
    LatencyStats::from_ns(samples)
}

/// Measures one-way latency with a **single thread driving both cores**.
///
/// The threaded [`pingpong_latency`] needs two busy-waiting threads; on
/// a host with fewer cores than threads its timings are dominated by
/// preemption (one side always holds the CPU while the other owes a
/// reply). Here one thread posts both sides' operations and polls both
/// cores' progress until each half round trip completes, so the
/// measurement stays on-CPU end to end. This is the configuration the
/// committed `BENCH_PINGPONG.json` baselines use — stable enough for a
/// tolerance-based regression gate even on a single-core box.
pub fn pingpong_singlethread(opts: &PingpongOpts, size: usize) -> LatencyStats {
    let (a, b) = build_pair(opts);
    let payload = Bytes::from(vec![0x42u8; size]);
    let total = opts.warmup + opts.iters;
    let mut samples = Vec::with_capacity(opts.iters);
    for i in 0..total {
        let t0 = std::time::Instant::now();
        // a -> b
        let r = b.irecv(GateId(0), 0).expect("irecv");
        let s = a.isend(GateId(0), 0, payload.clone()).expect("isend");
        while !(r.is_complete() && s.is_complete()) {
            a.progress();
            b.progress();
        }
        // b -> a (echo)
        let data = r.take_data().expect("payload");
        let r = a.irecv(GateId(0), 0).expect("irecv");
        let s = b.isend(GateId(0), 0, data).expect("isend");
        while !(r.is_complete() && s.is_complete()) {
            a.progress();
            b.progress();
        }
        let _ = r.take_data();
        if i >= opts.warmup {
            samples.push(t0.elapsed().as_nanos() as u64 / 2); // one-way
        }
    }
    LatencyStats::from_ns(samples)
}

/// Produces one [`Series`] (median one-way latency per size).
pub fn pingpong_series(opts: &PingpongOpts, label: &str, sizes: &[usize]) -> Series {
    Series {
        label: label.to_string(),
        points: sizes
            .iter()
            .map(|&s| (s, pingpong_latency(opts, s).median_us()))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(locking: LockingMode, via_engine: bool) -> PingpongOpts {
        PingpongOpts {
            locking,
            wire: WireModel::ideal(),
            via_engine,
            iters: 10,
            warmup: 2,
            ..PingpongOpts::default()
        }
    }

    #[test]
    fn runs_for_every_locking_mode() {
        for locking in [LockingMode::Coarse, LockingMode::Fine] {
            let stats = pingpong_latency(&quick(locking, false), 64);
            assert_eq!(stats.count(), 10);
            assert!(stats.min_ns() > 0);
        }
    }

    #[test]
    fn runs_through_the_engine() {
        let stats = pingpong_latency(&quick(LockingMode::Fine, true), 64);
        assert_eq!(stats.count(), 10);
    }

    #[test]
    fn series_has_one_point_per_size() {
        let s = pingpong_series(&quick(LockingMode::Fine, false), "t", &[1, 64]);
        assert_eq!(s.points.len(), 2);
        assert_eq!(s.points[0].0, 1);
        assert!(s.points.iter().all(|&(_, us)| us > 0.0));
    }

    #[test]
    fn singlethread_matches_threaded_protocol() {
        let stats = pingpong_singlethread(&quick(LockingMode::Fine, false), 64);
        assert_eq!(stats.count(), 10);
        assert!(stats.min_ns() > 0);
        // Rendezvous path too (size above the default eager threshold).
        let stats = pingpong_singlethread(&quick(LockingMode::Coarse, false), 64 * 1024);
        assert_eq!(stats.count(), 10);
    }

    #[test]
    fn wire_latency_is_a_hard_floor() {
        // A 200 µs wire bounds the one-way latency from below regardless
        // of host scheduling noise: even the fastest sample must pay two
        // wire traversals per round trip.
        let slow = PingpongOpts {
            wire: WireModel {
                latency_ns: 200_000,
                ..WireModel::ideal()
            },
            iters: 3,
            warmup: 1,
            ..PingpongOpts::default()
        };
        let t_slow = pingpong_latency(&slow, 8).min_ns();
        assert!(t_slow >= 190_000, "one-way min {t_slow} ns beat the wire");
    }
}
