//! Machine-readable benchmark reports (`BENCH_*.json`).
//!
//! The `figures bench --json` subcommand renders benchmark results as a
//! flat list of records and writes them to the repo root, where `cargo
//! xtask bench-check` compares fresh runs against the committed
//! baselines (docs/METRICS.md describes the refresh procedure). The
//! schema is deliberately tiny so the dep-free parser in `xtask` stays
//! tiny too:
//!
//! ```json
//! {
//!   "schema": 1,
//!   "records": [
//!     {"name": "fig3/coarse locking/size=4", "unit": "us",
//!      "value": 5.4, "p50": null, "p99": null, "kind": "sim"}
//!   ]
//! }
//! ```
//!
//! `kind` is `"sim"` for deterministic virtual-clock results (compared
//! exactly) or `"real"` for wall-clock measurements (compared within a
//! tolerance band).

use std::io::Write as _;
use std::path::Path;

/// One benchmark result.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Hierarchical metric name, `/`-separated (e.g. `fig3/<label>/size=64`).
    pub name: String,
    /// Unit of `value` (`us`, `ns`, `MB/s`, ...).
    pub unit: String,
    /// The headline value (median for latency records).
    pub value: f64,
    /// Median, when a distribution was measured.
    pub p50: Option<f64>,
    /// 99th percentile, when a distribution was measured.
    pub p99: Option<f64>,
    /// `"sim"` (deterministic, compared exactly) or `"real"`
    /// (wall-clock, compared within tolerance).
    pub kind: &'static str,
}

impl BenchRecord {
    /// A deterministic simulator record (no distribution).
    pub fn sim(name: impl Into<String>, unit: &str, value: f64) -> Self {
        BenchRecord {
            name: name.into(),
            unit: unit.to_string(),
            value,
            p50: None,
            p99: None,
            kind: "sim",
        }
    }

    /// A wall-clock record with distribution percentiles.
    pub fn real(name: impl Into<String>, unit: &str, value: f64, p50: f64, p99: f64) -> Self {
        BenchRecord {
            name: name.into(),
            unit: unit.to_string(),
            value,
            p50: Some(p50),
            p99: Some(p99),
            kind: "real",
        }
    }
}

/// Formats an `f64` so `str::parse::<f64>` round-trips it exactly
/// (Rust's `{:?}` prints the shortest representation that does).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        // JSON has no Inf/NaN; a benchmark producing one is a bug we
        // want visible in the diff, not a parse error.
        "null".to_string()
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders records as the `BENCH_*.json` document.
pub fn to_json(records: &[BenchRecord]) -> String {
    let mut out = String::from("{\n  \"schema\": 1,\n  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        let opt = |v: Option<f64>| v.map_or("null".to_string(), fmt_f64);
        out.push_str(&format!(
            "    {{\"name\": {}, \"unit\": {}, \"value\": {}, \"p50\": {}, \"p99\": {}, \"kind\": {}}}{}\n",
            json_str(&r.name),
            json_str(&r.unit),
            fmt_f64(r.value),
            opt(r.p50),
            opt(r.p99),
            json_str(r.kind),
            if i + 1 < records.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes records to `path` as JSON.
pub fn write_json(path: &Path, records: &[BenchRecord]) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(to_json(records).as_bytes())
}

/// Measures the cost of one histogram `record` call, in nanoseconds —
/// the metric layer's per-op budget (docs/METRICS.md: ≤ 25 ns on the
/// reference host, release build).
///
/// Runs several timed passes over a pre-resolved handle and returns the
/// fastest pass (minimum over passes filters scheduler noise; within a
/// pass the loop amortizes the two timestamps over `iters` records).
pub fn measure_hist_record_ns() -> f64 {
    let h = nm_metrics::metrics().histogram("bench.micro.record_cost");
    h.record(0); // warm this thread's stripe assignment
    let iters: u64 = 1_000_000;
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t0 = std::time::Instant::now();
        for i in 0..iters {
            // Vary the value so the bucket computation is exercised
            // across linear and log-linear ranges.
            h.record(std::hint::black_box(i % 65_536));
        }
        let per_op = t0.elapsed().as_nanos() as f64 / iters as f64;
        best = best.min(per_op);
    }
    h.reset();
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_and_roundtrip() {
        let records = vec![
            BenchRecord::sim("fig3/coarse/size=4", "us", 5.4),
            BenchRecord::real("pingpong/size=4", "us", 2.25, 2.25, 3.5),
        ];
        let json = to_json(&records);
        assert!(json.contains("\"schema\": 1"));
        assert!(json.contains("\"name\": \"fig3/coarse/size=4\""));
        assert!(json.contains("\"kind\": \"sim\""));
        assert!(json.contains("\"p99\": 3.5"));
        assert!(json.contains("\"p50\": null"));
        // Exactly one comma-separated record pair.
        assert_eq!(json.matches("{\"name\"").count(), 2);
    }

    #[test]
    fn f64_formatting_roundtrips() {
        for v in [0.0, 1.5, 0.1 + 0.2, 123456.789, 1e-9, f64::MAX] {
            let s = fmt_f64(v);
            assert_eq!(s.parse::<f64>().unwrap(), v, "{s}");
        }
        assert_eq!(fmt_f64(f64::NAN), "null");
    }

    #[test]
    fn write_then_read_back() {
        let dir = std::env::temp_dir();
        let path = dir.join("nm_bench_report_test.json");
        let records = vec![BenchRecord::sim("a/b", "us", 1.0)];
        write_json(&path, &records).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, to_json(&records));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn record_cost_is_measurable() {
        // Debug-build sanity only: the ≤ 25 ns budget is asserted by the
        // release-mode criterion bench and bench-check baselines.
        let ns = measure_hist_record_ns();
        assert!(ns.is_finite() && ns > 0.0);
    }
}
