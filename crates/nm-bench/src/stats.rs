//! Latency sample statistics.

use std::time::Duration;

/// Summary statistics over latency samples (stored in nanoseconds).
#[derive(Debug, Clone)]
pub struct LatencyStats {
    samples: Vec<u64>,
}

impl LatencyStats {
    /// Builds statistics from raw nanosecond samples.
    ///
    /// # Panics
    /// Panics when `samples` is empty.
    pub fn from_ns(mut samples: Vec<u64>) -> Self {
        assert!(!samples.is_empty(), "no samples");
        samples.sort_unstable();
        LatencyStats { samples }
    }

    /// Builds statistics from [`Duration`] samples.
    pub fn from_durations(samples: &[Duration]) -> Self {
        Self::from_ns(samples.iter().map(|d| d.as_nanos() as u64).collect())
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Arithmetic mean, nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        self.samples.iter().sum::<u64>() as f64 / self.samples.len() as f64
    }

    /// Median (p50), nanoseconds.
    pub fn median_ns(&self) -> u64 {
        self.percentile_ns(50.0)
    }

    /// Minimum, nanoseconds.
    pub fn min_ns(&self) -> u64 {
        self.samples[0]
    }

    /// Maximum, nanoseconds.
    pub fn max_ns(&self) -> u64 {
        *self.samples.last().expect("non-empty")
    }

    /// Percentile in `[0, 100]` (nearest-rank), nanoseconds.
    pub fn percentile_ns(&self, p: f64) -> u64 {
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        if self.samples.len() == 1 {
            return self.samples[0];
        }
        let rank = (p / 100.0 * (self.samples.len() - 1) as f64).round() as usize;
        self.samples[rank]
    }

    /// Median in microseconds.
    pub fn median_us(&self) -> f64 {
        self.median_ns() as f64 / 1_000.0
    }

    /// Mean in microseconds.
    pub fn mean_us(&self) -> f64 {
        self.mean_ns() / 1_000.0
    }
}

impl std::fmt::Display for LatencyStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} min={:.2}µs p50={:.2}µs mean={:.2}µs max={:.2}µs",
            self.count(),
            self.min_ns() as f64 / 1e3,
            self.median_ns() as f64 / 1e3,
            self.mean_us(),
            self.max_ns() as f64 / 1e3,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_stats() {
        let s = LatencyStats::from_ns(vec![300, 100, 200, 400, 500]);
        assert_eq!(s.count(), 5);
        assert_eq!(s.min_ns(), 100);
        assert_eq!(s.max_ns(), 500);
        assert_eq!(s.median_ns(), 300);
        assert!((s.mean_ns() - 300.0).abs() < 1e-9);
        assert_eq!(s.percentile_ns(0.0), 100);
        assert_eq!(s.percentile_ns(100.0), 500);
    }

    #[test]
    fn single_sample() {
        let s = LatencyStats::from_ns(vec![42]);
        assert_eq!(s.median_ns(), 42);
        assert_eq!(s.percentile_ns(99.0), 42);
    }

    #[test]
    fn microsecond_views() {
        let s = LatencyStats::from_ns(vec![1_500, 2_500]);
        assert!((s.mean_us() - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn empty_rejected() {
        let _ = LatencyStats::from_ns(vec![]);
    }

    #[test]
    fn from_durations_converts() {
        let s = LatencyStats::from_durations(&[Duration::from_micros(3), Duration::from_micros(5)]);
        assert_eq!(s.min_ns(), 3_000);
        assert_eq!(s.max_ns(), 5_000);
    }

    #[test]
    fn display_is_humane() {
        let s = LatencyStats::from_ns(vec![1000, 2000]);
        let out = s.to_string();
        assert!(out.contains("n=2"));
        assert!(out.contains("µs"));
    }
}
