//! Real-mode multi-gate message-rate benchmark.
//!
//! The throughput companion to the latency pingpongs: `flows` endpoint
//! pairs, each flow owning its *own gate* on both cores, stream small
//! eager messages as fast as the stack admits them. With per-gate collect
//! locks the flows touch disjoint sections and the aggregate rate scales
//! with the number of driving threads; with a node-wide lock they
//! serialize (the Zambre-style endpoints argument, applied to the collect
//! layer).

use std::sync::{Arc, Barrier};
use std::time::Instant;

use bytes::Bytes;

use nm_core::{CommCore, CoreBuilder, CoreConfig, GateId, LockingMode};
use nm_fabric::{Fabric, WireModel};
use nm_sync::WaitStrategy;

/// Message-rate benchmark configuration.
#[derive(Clone)]
pub struct MsgrateOpts {
    /// Locking mode under test.
    pub locking: LockingMode,
    /// Wire model of every flow's rail.
    pub wire: WireModel,
    /// Waiting strategy of senders and receivers (threaded mode).
    pub wait: WaitStrategy,
    /// Concurrent single-gate flows (one sender + one receiver thread
    /// each in threaded mode).
    pub flows: usize,
    /// VCI contexts per flow's NIC (1 = the classic shared-ring NIC;
    /// the transfer layer stripes over `vcis` independent tx/rx rings).
    pub vcis: usize,
    /// Payload size in bytes (should stay under the eager threshold).
    pub size: usize,
    /// In-flight messages posted per flow per round.
    pub window: usize,
    /// Measured rounds.
    pub rounds: usize,
    /// Untimed warmup rounds (single-thread mode only).
    pub warmup_rounds: usize,
}

impl Default for MsgrateOpts {
    fn default() -> Self {
        MsgrateOpts {
            locking: LockingMode::Fine,
            wire: WireModel::myri_10g(),
            wait: WaitStrategy::Busy,
            flows: 4,
            vcis: 1,
            size: 8,
            window: 32,
            rounds: 50,
            warmup_rounds: 5,
        }
    }
}

/// Builds a pair of cores with one connected gate per flow: gate `i` of
/// the sender core is wired to gate `i` of the receiver core.
fn build_multi_gate(opts: &MsgrateOpts) -> (Arc<CommCore>, Arc<CommCore>) {
    let fabric = Fabric::real_time();
    let config = CoreConfig::default().locking(opts.locking);
    let mut builder_a = CoreBuilder::new(config.clone());
    let mut builder_b = CoreBuilder::new(config);
    for _ in 0..opts.flows {
        let (pa, pb) = fabric.pair_vcis(&[opts.wire], true, opts.vcis);
        builder_a = builder_a.add_gate(pa.drivers());
        builder_b = builder_b.add_gate(pb.drivers());
    }
    (builder_a.build(), builder_b.build())
}

/// Aggregate message rate (million messages/s) with one sender and one
/// receiver thread per flow, all running concurrently.
///
/// This is the configuration the sharding targets: on a multicore host
/// the per-gate collect locks let the flows proceed without contending.
/// Timings include thread scheduling noise, so treat the result as a
/// scaling indicator rather than a stable regression baseline.
pub fn msgrate_threaded(opts: &MsgrateOpts) -> f64 {
    assert!(
        opts.locking.thread_safe(),
        "threaded msgrate requires a thread-safe locking mode"
    );
    let (a, b) = build_multi_gate(opts);
    let (flows, size, window, rounds, wait) =
        (opts.flows, opts.size, opts.window, opts.rounds, opts.wait);
    let barrier = Arc::new(Barrier::new(2 * flows + 1));

    let mut handles = Vec::new();
    for t in 0..flows {
        let b = Arc::clone(&b);
        let bar = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            bar.wait();
            for _ in 0..rounds {
                let reqs: Vec<_> = (0..window)
                    .map(|_| b.irecv(GateId(t), t as u64).expect("irecv"))
                    .collect();
                for r in reqs {
                    b.wait(&r, wait).unwrap();
                    let _ = r.take_data().expect("payload");
                }
            }
        }));
    }
    for t in 0..flows {
        let a = Arc::clone(&a);
        let bar = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let payload = Bytes::from(vec![t as u8; size]);
            bar.wait();
            for _ in 0..rounds {
                let reqs: Vec<_> = (0..window)
                    .map(|_| {
                        a.isend(GateId(t), t as u64, payload.clone())
                            .expect("isend")
                    })
                    .collect();
                for s in reqs {
                    a.wait(&s, wait).unwrap();
                }
            }
        }));
    }

    barrier.wait();
    let t0 = Instant::now();
    for h in handles {
        h.join().expect("msgrate worker");
    }
    let elapsed_ns = t0.elapsed().as_nanos() as u64;
    (flows * rounds * window) as f64 / elapsed_ns as f64 * 1e3
}

/// Aggregate message rate with a **single thread driving both cores**,
/// round-robin across all flows.
///
/// The stable counterpart of [`msgrate_threaded`] for regression
/// baselines (same rationale as `pingpong_singlethread`): one thread
/// posts every flow's window on both sides, then polls both cores until
/// the round drains, so the measurement stays on-CPU even on a
/// single-core box. This is the configuration the committed
/// `BENCH_PINGPONG.json` msgrate record uses.
pub fn msgrate_singlethread(opts: &MsgrateOpts) -> f64 {
    let (a, b) = build_multi_gate(opts);
    let payload = Bytes::from(vec![0x42u8; opts.size]);
    let mut t0 = Instant::now();
    for round in 0..opts.warmup_rounds + opts.rounds {
        if round == opts.warmup_rounds {
            t0 = Instant::now();
        }
        let mut recvs = Vec::with_capacity(opts.flows * opts.window);
        let mut sends = Vec::with_capacity(opts.flows * opts.window);
        for t in 0..opts.flows {
            for _ in 0..opts.window {
                recvs.push(b.irecv(GateId(t), t as u64).expect("irecv"));
                sends.push(
                    a.isend(GateId(t), t as u64, payload.clone())
                        .expect("isend"),
                );
            }
        }
        while !(recvs.iter().all(|r| r.is_complete()) && sends.iter().all(|s| s.is_complete())) {
            a.progress();
            b.progress();
        }
        for r in recvs {
            let _ = r.take_data().expect("payload");
        }
    }
    let elapsed_ns = t0.elapsed().as_nanos() as u64;
    (opts.flows * opts.rounds * opts.window) as f64 / elapsed_ns as f64 * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(locking: LockingMode, flows: usize) -> MsgrateOpts {
        MsgrateOpts {
            locking,
            wire: WireModel::ideal(),
            flows,
            window: 8,
            rounds: 3,
            warmup_rounds: 1,
            ..MsgrateOpts::default()
        }
    }

    #[test]
    fn singlethread_runs_for_every_locking_mode() {
        for locking in [
            LockingMode::SingleThread,
            LockingMode::Coarse,
            LockingMode::Fine,
        ] {
            let rate = msgrate_singlethread(&quick(locking, 2));
            assert!(rate > 0.0, "{locking:?} rate {rate}");
        }
    }

    #[test]
    fn threaded_runs_fine_grain_multi_flow() {
        let rate = msgrate_threaded(&quick(LockingMode::Fine, 2));
        assert!(rate > 0.0, "rate {rate}");
    }

    #[test]
    fn multi_vci_flows_deliver_in_both_drive_modes() {
        let opts = MsgrateOpts {
            vcis: 2,
            ..quick(LockingMode::Fine, 2)
        };
        assert!(msgrate_singlethread(&opts) > 0.0);
        assert!(msgrate_threaded(&opts) > 0.0);
    }

    #[test]
    #[should_panic(expected = "thread-safe locking")]
    fn threaded_rejects_single_thread_mode() {
        let _ = msgrate_threaded(&quick(LockingMode::SingleThread, 2));
    }
}
