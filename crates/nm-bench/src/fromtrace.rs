//! "Table 1" constants derived purely from trace events.
//!
//! [`calibrate`](crate::calibrate) times each mechanism with a stopwatch
//! around it; this module instead *replays the evidence*: it runs the
//! instrumented stack (or a deterministic virtual-clock script), drains
//! the [`nm_trace`] rings, and derives the same constants from event
//! timestamps alone:
//!
//! | constant | derivation |
//! |---|---|
//! | lock cycle | median gap between `LockAcquire`s of the hot lock |
//! | PIOMan pass | median `PollPassBegin`→`PollPassEnd` span |
//! | context switch | median `ThreadBlock`→`ThreadWake` span |
//! | offload hop | median `OffloadSubmit`→`OffloadRun` cross-thread gap |
//!
//! Requires the `trace` feature; with tracing compiled out the rings stay
//! empty and every derived constant is zero.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use nm_progress::{Offloader, PollOutcome, ProgressEngine};
use nm_sim::SimCosts;
use nm_sync::{Semaphore, SpinLock};
use nm_trace::{EventId, SpanStats, Trace, TraceReport};

/// Paper constants re-derived from trace timestamps (ns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConstants {
    /// Spinlock acquire/release cycle (paper: 70 ns).
    pub lock_cycle_ns: u64,
    /// One progression-engine pass (paper: ~200 ns).
    pub pioman_pass_ns: u64,
    /// Blocking context switch (paper: ~750 ns).
    pub ctx_switch_ns: u64,
    /// Deferred-submission hop to the executing thread (paper: ~400 ns on
    /// an idle core).
    pub offload_hop_ns: u64,
}

fn median(samples: Vec<u64>) -> u64 {
    SpanStats::from_samples(samples).p50_ns
}

/// Derives the constants from a drained trace.
pub fn derive(trace: &Trace) -> TraceConstants {
    TraceConstants {
        lock_cycle_ns: median(TraceReport::gap_durations(trace, EventId::LockAcquire)),
        pioman_pass_ns: median(TraceReport::span_durations(
            trace,
            EventId::PollPassBegin,
            EventId::PollPassEnd,
        )),
        ctx_switch_ns: median(TraceReport::span_durations(
            trace,
            EventId::ThreadBlock,
            EventId::ThreadWake,
        )),
        offload_hop_ns: median(TraceReport::cross_durations(
            trace,
            EventId::OffloadSubmit,
            EventId::OffloadRun,
        )),
    }
}

/// Iterations per real-mode workload; kept under the default ring
/// capacity so nothing is dropped mid-workload.
const REAL_ITERS: usize = 20_000;

/// Runs the four real workloads under the real clock and returns the
/// combined trace. Each workload is drained separately so one cannot
/// evict another's events from the shared per-thread ring.
pub fn real_trace() -> Trace {
    nm_trace::install_real_clock();
    nm_trace::reset();
    let mut threads = Vec::new();

    // 1. Hot-lock loop: successive LockAcquire gaps = one full cycle.
    {
        let lock = SpinLock::new(0u64);
        for _ in 0..REAL_ITERS {
            *lock.lock() += 1;
        }
    }
    threads.extend(nm_trace::take_trace().threads);

    // 2. Progression passes over one idle source.
    {
        let engine = ProgressEngine::new();
        engine.register(Arc::new(|| PollOutcome::Idle) as _);
        for _ in 0..REAL_ITERS / 2 {
            engine.poll_all();
        }
    }
    threads.extend(nm_trace::take_trace().threads);

    // 3. Semaphore pingpong: every hop blocks, so each ThreadBlock→
    //    ThreadWake span is one real sleep + wake.
    {
        const HOPS: usize = 2_000;
        let ping = Arc::new(Semaphore::new(0));
        let pong = Arc::new(Semaphore::new(0));
        let (p2, q2) = (Arc::clone(&ping), Arc::clone(&pong));
        let peer = std::thread::spawn(move || {
            for _ in 0..HOPS {
                p2.acquire();
                q2.release();
            }
        });
        for _ in 0..HOPS {
            ping.release();
            pong.acquire();
        }
        peer.join().expect("pingpong peer");
    }
    threads.extend(nm_trace::take_trace().threads);

    // 4. Idle-core offload: submissions queued here, drained by a
    //    dedicated poller thread (the Fig 9 placement).
    {
        let off = Arc::new(Offloader::idle_core());
        let stop = Arc::new(AtomicBool::new(false));
        let (o2, s2) = (Arc::clone(&off), Arc::clone(&stop));
        let poller = std::thread::spawn(move || {
            while !s2.load(Ordering::Acquire) {
                if o2.drain() == 0 {
                    // Yield, not spin: on a single-CPU host spinning would
                    // hold the core a whole scheduler quantum and the hop
                    // would measure preemption, not the queue crossing.
                    std::thread::yield_now();
                }
            }
            o2.drain();
        });
        for _ in 0..2_000 {
            off.submit(|| {});
            // Let the poller catch up so hops measure the queue crossing,
            // not a growing backlog.
            while off.pending() > 0 {
                std::thread::yield_now();
            }
        }
        stop.store(true, Ordering::Release);
        poller.join().expect("offload poller");
    }
    threads.extend(nm_trace::take_trace().threads);

    Trace { threads }
}

/// Samples per mechanism in the simulated script.
const SIM_SAMPLES: u64 = 64;

/// Replays a deterministic virtual-clock script of the four mechanisms,
/// each priced by `costs`; the derived constants equal the corresponding
/// [`SimCosts`] fields exactly, and the trace is bit-identical across
/// runs (offload hop = `enqueue_ns + idle_poll_gap_ns`).
pub fn sim_trace(costs: &SimCosts) -> Trace {
    let clock = Arc::new(AtomicU64::new(0));
    nm_trace::install_virtual_clock(Arc::clone(&clock));
    nm_trace::reset();
    let tick = |ns: u64| {
        // relaxed: single-threaded script; the clock is only read back
        // on this same thread via trace timestamps.
        clock.fetch_add(ns, Ordering::Relaxed);
    };

    // A lock id only this script uses; the dominant-`a` filter will pick
    // it even if stray lock events share the trace.
    const LOCK: u64 = 0x51D0DE;
    for _ in 0..=SIM_SAMPLES {
        nm_trace::emit(EventId::LockAcquire, LOCK, 0);
        nm_trace::emit(EventId::LockRelease, LOCK, 0);
        tick(costs.lock_cycle_ns);
    }
    for _ in 0..SIM_SAMPLES {
        nm_trace::emit(EventId::PollPassBegin, 0, 0);
        tick(costs.pioman_pass_ns);
        nm_trace::emit(EventId::PollPassEnd, 0, 0);
        tick(costs.poll_pass_ns);
    }
    for _ in 0..SIM_SAMPLES {
        nm_trace::emit(EventId::ThreadBlock, 0, 0);
        tick(costs.ctx_switch_ns);
        nm_trace::emit(EventId::ThreadWake, 0, 0);
    }
    for _ in 0..SIM_SAMPLES {
        nm_trace::emit(EventId::OffloadSubmit, 1, 0);
        tick(costs.enqueue_ns + costs.idle_poll_gap_ns);
        nm_trace::emit(EventId::OffloadRun, 1, 0);
    }

    let trace = nm_trace::take_trace();
    nm_trace::install_real_clock();
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Restricts a trace to the calling thread, so parallel tests that
    /// also emit events cannot perturb these assertions.
    #[cfg(feature = "trace")]
    fn own_threads(trace: Trace) -> Trace {
        let me = std::thread::current();
        let name = me.name().unwrap_or_default().to_string();
        Trace {
            threads: trace
                .threads
                .into_iter()
                .filter(|t| t.name == name)
                .collect(),
        }
    }

    #[test]
    fn derive_on_empty_trace_is_zero() {
        let c = derive(&Trace::default());
        assert_eq!(c.lock_cycle_ns, 0);
        assert_eq!(c.offload_hop_ns, 0);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn sim_constants_equal_costs_exactly() {
        let costs = SimCosts::paper();
        let trace = own_threads(sim_trace(&costs));
        let c = derive(&trace);
        assert_eq!(c.lock_cycle_ns, costs.lock_cycle_ns);
        assert_eq!(c.pioman_pass_ns, costs.pioman_pass_ns);
        assert_eq!(c.ctx_switch_ns, costs.ctx_switch_ns);
        assert_eq!(c.offload_hop_ns, costs.enqueue_ns + costs.idle_poll_gap_ns);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn sim_trace_is_bit_deterministic() {
        let costs = SimCosts::paper();
        let a = own_threads(sim_trace(&costs));
        let b = own_threads(sim_trace(&costs));
        let flat = |t: &Trace| {
            t.threads
                .iter()
                .flat_map(|th| th.events.iter().map(|e| (e.ts, e.id, e.a, e.b)))
                .collect::<Vec<_>>()
        };
        assert!(!flat(&a).is_empty(), "sim trace recorded nothing");
        assert_eq!(flat(&a), flat(&b));
    }

    #[cfg(not(feature = "trace"))]
    #[test]
    fn without_the_feature_traces_stay_empty() {
        let costs = SimCosts::paper();
        assert!(sim_trace(&costs).is_empty());
        assert_eq!(derive(&sim_trace(&costs)).lock_cycle_ns, 0);
    }
}
