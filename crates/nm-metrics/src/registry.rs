//! The process-wide metrics registry and snapshots.
//!
//! One registry ([`metrics`]) owns every named counter, gauge and
//! histogram in the stack. Lookups take a mutex and are cold-path only:
//! call sites resolve their handles once (typically in a
//! `OnceLock`) and then record through the lock-free handle. A
//! [`MetricsSnapshot`] is a cheap, consistent-enough copy (each metric
//! is read atomically; the set is not globally atomic, which is fine
//! for statistics) that renders to OpenMetrics text or JSON (see
//! [`crate::export`]).

use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::counters::CounterRegistry;
use crate::gauge::Gauge;
use crate::hist::{Histogram, HistogramSnapshot};

/// Counter values captured at a snapshot, for rate derivation.
type RateWindow = (Instant, Vec<(&'static str, u64)>);

/// The stack-wide metrics registry; obtain it via [`metrics`].
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: CounterRegistry,
    gauges: Mutex<Vec<(&'static str, Arc<Gauge>)>>,
    hists: Mutex<Vec<(&'static str, Arc<Histogram>)>>,
    /// Counter values at the previous snapshot, for rate derivation.
    window: Mutex<Option<RateWindow>>,
}

impl MetricsRegistry {
    /// The named-counter sub-registry (also reachable as
    /// [`crate::counters::registry`], the historical path).
    pub fn counters(&self) -> &CounterRegistry {
        &self.counters
    }

    /// Returns the counter named `name`, creating it if needed.
    pub fn counter(&self, name: &'static str) -> Arc<crate::counters::Counter> {
        self.counters.counter(name)
    }

    /// Returns the sharded counter named `name`, creating it if needed.
    pub fn sharded_counter(&self, name: &'static str) -> Arc<crate::counters::ShardedCounter> {
        self.counters.sharded_counter(name)
    }

    /// Returns the gauge named `name`, creating it if needed.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        let mut gauges = self.gauges.lock().unwrap();
        if let Some((_, g)) = gauges.iter().find(|(n, _)| *n == name) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::new());
        gauges.push((name, Arc::clone(&g)));
        g
    }

    /// Returns the histogram named `name`, creating it if needed.
    /// Histograms allocate their bucket arrays on creation — resolve
    /// once and cache the handle, never look up per operation.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        let mut hists = self.hists.lock().unwrap();
        if let Some((_, h)) = hists.iter().find(|(n, _)| *n == name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new());
        hists.push((name, Arc::clone(&h)));
        h
    }

    /// Takes a snapshot of every registered metric, sorted by name.
    ///
    /// Counter rates (`<name>.per_sec`) are derived from the wall-clock
    /// window since the previous `snapshot` call; the first snapshot of
    /// a process reports no rates.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let now = Instant::now();
        let counters = self.counters.snapshot();

        let rates = {
            let mut window = self.window.lock().unwrap();
            let rates = match window.as_ref() {
                Some((at, prev)) => {
                    let dt = now.duration_since(*at).as_secs_f64();
                    if dt > 0.0 {
                        counters
                            .iter()
                            .map(|(name, cur)| {
                                let before = prev
                                    .iter()
                                    .find(|(n, _)| n == name)
                                    .map(|(_, v)| *v)
                                    .unwrap_or(0);
                                (name.to_string(), cur.saturating_sub(before) as f64 / dt)
                            })
                            .collect()
                    } else {
                        Vec::new()
                    }
                }
                None => Vec::new(),
            };
            *window = Some((now, counters.clone()));
            rates
        };

        let mut gauges: Vec<(String, i64)> = {
            let g = self.gauges.lock().unwrap();
            g.iter().map(|(n, g)| (n.to_string(), g.get())).collect()
        };
        gauges.sort_by(|a, b| a.0.cmp(&b.0));

        let mut hists: Vec<(String, HistogramSnapshot)> = {
            let h = self.hists.lock().unwrap();
            h.iter()
                .map(|(n, h)| (n.to_string(), h.snapshot()))
                .collect()
        };
        hists.sort_by(|a, b| a.0.cmp(&b.0));

        MetricsSnapshot {
            counters: counters
                .into_iter()
                .map(|(n, v)| (n.to_string(), v))
                .collect(),
            rates,
            gauges,
            hists,
        }
    }

    /// Resets every counter and histogram to zero (gauges keep their
    /// instantaneous value) and forgets the rate window. Bench-harness
    /// epochs only; racing recorders may leave a few counts behind.
    pub fn reset(&self) {
        self.counters.reset_all();
        let hists = self.hists.lock().unwrap();
        for (_, h) in hists.iter() {
            h.reset();
        }
        drop(hists);
        *self.window.lock().unwrap() = None;
    }
}

/// A point-in-time copy of every registered metric, sorted by name.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter (plain and sharded).
    pub counters: Vec<(String, u64)>,
    /// `(name, events/second)` over the window since the previous
    /// snapshot; empty on the first snapshot.
    pub rates: Vec<(String, f64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` for every histogram.
    pub hists: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Looks up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks up a histogram snapshot by name.
    pub fn hist(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }
}

/// The process-wide registry.
pub fn metrics() -> &'static MetricsRegistry {
    static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();
    REGISTRY.get_or_init(MetricsRegistry::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_dedupe_by_name() {
        let g1 = metrics().gauge("test.reg.gauge");
        let g2 = metrics().gauge("test.reg.gauge");
        assert!(Arc::ptr_eq(&g1, &g2));
        let h1 = metrics().histogram("test.reg.hist");
        let h2 = metrics().histogram("test.reg.hist");
        assert!(Arc::ptr_eq(&h1, &h2));
    }

    #[test]
    fn snapshot_carries_all_kinds() {
        metrics().counter("test.reg.ctr").add(2);
        metrics().gauge("test.reg.g2").set(-7);
        metrics().histogram("test.reg.h2").record(99);
        let s = metrics().snapshot();
        assert_eq!(s.counter("test.reg.ctr"), Some(2));
        assert_eq!(s.gauge("test.reg.g2"), Some(-7));
        assert!(s.hist("test.reg.h2").unwrap().count() >= 1);
        assert!(s.counter("test.reg.nope").is_none());
    }

    #[test]
    fn rates_appear_from_second_snapshot() {
        // Other tests in this binary snapshot the same global registry
        // concurrently and may steal the rate window; retry until one
        // window cleanly brackets our increment.
        let c = metrics().counter("test.reg.rate");
        for _ in 0..100 {
            let _ = metrics().snapshot();
            c.add(100);
            std::thread::sleep(std::time::Duration::from_millis(2));
            let s = metrics().snapshot();
            let rate = s
                .rates
                .iter()
                .find(|(n, _)| n == "test.reg.rate")
                .map(|(_, r)| *r);
            if rate.is_some_and(|r| r > 0.0) {
                return;
            }
        }
        panic!("rate never derived over 100 attempts");
    }
}
