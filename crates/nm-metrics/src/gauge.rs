//! Instantaneous-value gauges.
//!
//! A gauge is a relaxed `AtomicI64` that layers `set`/`add`/`sub` as the
//! quantity it mirrors changes: tasklet queue depth, offload backlog,
//! progress-engine empty-poll streak, bytes in flight on a wire. Like
//! everything in this crate it is always compiled in and every update is
//! one relaxed atomic op (module-wide discipline: advisory statistics,
//! never synchronization).

use std::sync::atomic::{AtomicI64, Ordering};

/// An instantaneous value, updated with relaxed atomic ops.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Creates a gauge at zero.
    pub const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Raises the value to `v` if `v` is larger (high-watermark gauges).
    #[inline]
    pub fn record_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_add_sub() {
        let g = Gauge::new();
        g.set(10);
        g.add(5);
        g.sub(3);
        assert_eq!(g.get(), 12);
        g.sub(20);
        assert_eq!(g.get(), -8, "gauges may go negative transiently");
    }

    #[test]
    fn record_max_is_a_high_watermark() {
        let g = Gauge::new();
        g.record_max(4);
        g.record_max(2);
        assert_eq!(g.get(), 4);
        g.record_max(9);
        assert_eq!(g.get(), 9);
    }
}
