//! # nm-metrics — always-on metrics for the nomad stack
//!
//! The paper's whole argument rests on *measured distributions*, not
//! means: fixed-spin vs. passive waiting is decided by tail latency
//! under contention (Figs 5–7), and engine placement (Fig 8) by
//! sustained poll rate and idle gaps. `nm-trace` (the event tracer) is
//! the deep, offline instrument behind a cargo feature; this crate is
//! the cheap, **unconditionally compiled** one: latency histograms,
//! counters and gauges every layer keeps hot in production, with an
//! OpenMetrics/JSON snapshot API on top.
//!
//! ## Cost budget
//!
//! One relaxed atomic add — or one log-linear histogram record, which
//! is one bucket-index computation plus one relaxed add — per
//! operation. No locks, no allocation, no cargo feature on the record
//! path (`benches/metrics_overhead.rs` in `nm-benches` measures it;
//! the gate is ≤ 25 ns).
//!
//! ## Surfaces
//!
//! * [`Histogram`] — lock-free log-linear latency histogram (64
//!   sub-buckets per power-of-two, ≤ 1.6 % relative bucket width),
//!   per-thread shards merged on [`Histogram::snapshot`].
//! * [`Counter`] / [`ShardedCounter`] / [`LockStats`] — the counters
//!   surface, shared by every layer (historically `nm_sync::stats`,
//!   then `nm_trace::counters`; both re-export this crate now).
//! * [`Gauge`] — instantaneous values: queue depths, backlogs, streaks.
//! * [`metrics`] — the process-wide registry;
//!   [`MetricsRegistry::snapshot`] → [`export::to_openmetrics`] /
//!   [`export::to_json`].
//!
//! See `docs/METRICS.md` for the metric name catalogue and how this
//! layer differs from the `trace` feature.

#![warn(missing_docs)]

pub mod counters;
pub mod export;
mod gauge;
mod hist;
mod registry;

pub use counters::{Counter, CounterRegistry, LockStats, ShardedCounter};
pub use gauge::Gauge;
pub use hist::{
    bucket_bound, bucket_floor, bucket_index, HistTimer, Histogram, HistogramSnapshot, BUCKETS,
    MAX_TRACKABLE, STRIPES,
};
pub use registry::{metrics, MetricsRegistry, MetricsSnapshot};
