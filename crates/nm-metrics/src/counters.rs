//! Counters and lock statistics — the stack-wide single counters
//! surface.
//!
//! The paper decomposes thread-support overheads into per-primitive
//! constants (70 ns per lock acquire/release cycle, 750 ns per context
//! switch, …). These counters let the calibration harness attribute
//! costs: how many lock operations sit on the critical path of one
//! pingpong iteration, and how often they were contended.
//!
//! [`Counter`] and [`LockStats`] originally lived in `nm_sync::stats`,
//! then moved to `nm_trace::counters`; they now live here so the
//! always-on metrics layer owns the one registry every layer shares
//! (`nm_trace::counters` and `nm_sync::stats` re-export this module).
//! Unlike the ring-buffer tracer, nothing in this file is behind a
//! cargo feature: the global lock aggregates are maintained
//! unconditionally, through sharded counters so concurrent lock traffic
//! does not bounce one shared cache line.
//!
//! All increments are `Relaxed` single atomic adds (module-wide
//! discipline: these are monotonic statistics, never synchronization).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Acquisition/contention counters attached to every lock in the stack.
///
/// All increments are `Relaxed` single atomic adds; on x86-64 this costs on
/// the order of a nanosecond and does not perturb the measured constants at
/// the precision the paper reports.
#[derive(Debug, Default)]
pub struct LockStats {
    acquisitions: AtomicU64,
    contended: AtomicU64,
}

impl LockStats {
    /// Creates zeroed counters.
    pub const fn new() -> Self {
        LockStats {
            acquisitions: AtomicU64::new(0),
            contended: AtomicU64::new(0),
        }
    }

    /// Records one successful acquisition; `contended` when the fast path
    /// failed and the acquirer had to spin.
    ///
    /// Also feeds the registry's stack-wide `sync.lock.acquisitions` /
    /// `sync.lock.contended` aggregates (always on, sharded), so
    /// cross-layer lock totals have one source of truth.
    #[inline]
    pub fn record_acquire(&self, contended: bool) {
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
        if contended {
            self.contended.fetch_add(1, Ordering::Relaxed);
        }
        let (acq, cont) = global_lock_counters();
        acq.incr();
        if contended {
            cont.incr();
        }
    }

    /// Total successful acquisitions.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions.load(Ordering::Relaxed)
    }

    /// Acquisitions that found the lock held and had to spin.
    pub fn contentions(&self) -> u64 {
        self.contended.load(Ordering::Relaxed)
    }

    /// Fraction of acquisitions that were contended, in `[0, 1]`.
    pub fn contention_ratio(&self) -> f64 {
        let acq = self.acquisitions();
        if acq == 0 {
            0.0
        } else {
            self.contentions() as f64 / acq as f64
        }
    }

    /// Resets both counters to zero.
    pub fn reset(&self) {
        self.acquisitions.store(0, Ordering::Relaxed);
        self.contended.store(0, Ordering::Relaxed);
    }
}

/// A general-purpose relaxed event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a zeroed counter.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero, returning the previous value.
    pub fn take(&self) -> u64 {
        self.0.swap(0, Ordering::Relaxed)
    }
}

/// A counter sharded across cache-line-padded lanes.
///
/// Same contract as [`Counter`], but concurrent writers on different
/// cores do not contend on one cache line: each thread adds to its own
/// lane (round-robin assignment, cached thread-locally by the histogram
/// module's stripe index) and readers sum. Use for process-global
/// aggregates that every thread bumps on hot paths; plain [`Counter`]
/// is fine for per-instance statistics.
#[derive(Debug)]
pub struct ShardedCounter {
    lanes: [Lane; crate::hist::STRIPES],
}

/// One cache line worth of counter (pad to 64 bytes so lanes of the
/// same [`ShardedCounter`] never share a line).
#[derive(Debug, Default)]
#[repr(align(64))]
struct Lane(AtomicU64);

impl ShardedCounter {
    /// Creates a zeroed sharded counter.
    pub fn new() -> Self {
        ShardedCounter {
            lanes: Default::default(),
        }
    }

    /// Adds one (to the calling thread's lane).
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n` (to the calling thread's lane).
    #[inline]
    pub fn add(&self, n: u64) {
        self.lanes[crate::hist::stripe_index()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Sum over all lanes.
    pub fn get(&self) -> u64 {
        self.lanes.iter().map(|l| l.0.load(Ordering::Relaxed)).sum()
    }

    /// Resets every lane to zero, returning the previous sum.
    pub fn take(&self) -> u64 {
        self.lanes
            .iter()
            .map(|l| l.0.swap(0, Ordering::Relaxed))
            .sum()
    }
}

impl Default for ShardedCounter {
    fn default() -> Self {
        Self::new()
    }
}

/// The global named-counter registry.
///
/// Counters are created on first use and live for the process; lookups
/// take a mutex, so call sites should cache the returned [`Arc`] (hot
/// paths never look up by name per operation).
#[derive(Debug, Default)]
pub struct CounterRegistry {
    entries: Mutex<Vec<(&'static str, Arc<Counter>)>>,
    sharded: Mutex<Vec<(&'static str, Arc<ShardedCounter>)>>,
}

impl CounterRegistry {
    /// Returns the counter named `name`, creating it if needed.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        let mut entries = self.entries.lock().unwrap();
        if let Some((_, c)) = entries.iter().find(|(n, _)| *n == name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::new());
        entries.push((name, Arc::clone(&c)));
        c
    }

    /// Returns the sharded counter named `name`, creating it if needed.
    /// Sharded and plain counters share the namespace of
    /// [`CounterRegistry::snapshot`] but not storage: don't register the
    /// same name as both.
    pub fn sharded_counter(&self, name: &'static str) -> Arc<ShardedCounter> {
        let mut entries = self.sharded.lock().unwrap();
        if let Some((_, c)) = entries.iter().find(|(n, _)| *n == name) {
            return Arc::clone(c);
        }
        let c = Arc::new(ShardedCounter::new());
        entries.push((name, Arc::clone(&c)));
        c
    }

    /// Snapshot of every registered counter (plain and sharded), sorted
    /// by name.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        let mut out: Vec<_> = {
            let entries = self.entries.lock().unwrap();
            entries.iter().map(|(n, c)| (*n, c.get())).collect()
        };
        {
            let sharded = self.sharded.lock().unwrap();
            out.extend(sharded.iter().map(|(n, c)| (*n, c.get())));
        }
        out.sort_unstable_by_key(|(n, _)| *n);
        out
    }

    /// Resets every registered counter to zero.
    pub fn reset_all(&self) {
        let entries = self.entries.lock().unwrap();
        for (_, c) in entries.iter() {
            c.take();
        }
        drop(entries);
        let sharded = self.sharded.lock().unwrap();
        for (_, c) in sharded.iter() {
            c.take();
        }
    }
}

/// The process-wide counter registry — the counters half of
/// [`crate::metrics`].
pub fn registry() -> &'static CounterRegistry {
    crate::metrics().counters()
}

/// Stack-wide lock aggregates, registered once in [`registry`].
fn global_lock_counters() -> &'static (Arc<ShardedCounter>, Arc<ShardedCounter>) {
    static GLOBAL: OnceLock<(Arc<ShardedCounter>, Arc<ShardedCounter>)> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        (
            registry().sharded_counter("sync.lock.acquisitions"),
            registry().sharded_counter("sync.lock.contended"),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_stats_accumulate() {
        let s = LockStats::new();
        s.record_acquire(false);
        s.record_acquire(true);
        s.record_acquire(true);
        assert_eq!(s.acquisitions(), 3);
        assert_eq!(s.contentions(), 2);
        assert!((s.contention_ratio() - 2.0 / 3.0).abs() < 1e-12);
        s.reset();
        assert_eq!(s.acquisitions(), 0);
        assert_eq!(s.contention_ratio(), 0.0);
    }

    #[test]
    fn counter_take_swaps_to_zero() {
        let c = Counter::new();
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.take(), 10);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn sharded_counter_sums_lanes() {
        use std::sync::Arc as StdArc;
        let c = StdArc::new(ShardedCounter::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = StdArc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.incr();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        c.add(5);
        assert_eq!(c.get(), 4005);
        assert_eq!(c.take(), 4005);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn registry_dedupes_by_name() {
        let a = registry().counter("test.registry.dedup");
        let b = registry().counter("test.registry.dedup");
        assert!(Arc::ptr_eq(&a, &b));
        a.add(3);
        let snap = registry().snapshot();
        let entry = snap.iter().find(|(n, _)| *n == "test.registry.dedup");
        assert_eq!(entry, Some(&("test.registry.dedup", 3)));
    }

    #[test]
    fn sharded_registry_dedupes_and_snapshots() {
        let a = registry().sharded_counter("test.registry.sharded");
        let b = registry().sharded_counter("test.registry.sharded");
        assert!(Arc::ptr_eq(&a, &b));
        a.add(7);
        let snap = registry().snapshot();
        let entry = snap.iter().find(|(n, _)| *n == "test.registry.sharded");
        assert_eq!(entry, Some(&("test.registry.sharded", 7)));
    }

    #[test]
    fn lock_stats_feed_global_aggregates_always_on() {
        let acq = registry().sharded_counter("sync.lock.acquisitions");
        let before = acq.get();
        LockStats::new().record_acquire(true);
        assert!(acq.get() > before);
    }
}
