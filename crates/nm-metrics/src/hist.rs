//! Log-linear latency histograms (HDR-style), always compiled in.
//!
//! The paper's fixed-spin vs. passive-wait verdict rests on *tail*
//! latency, not means (Figs 5–7): a mean cannot distinguish "every wait
//! pays 750 ns" from "1 % of waits pay 75 µs". These histograms give
//! every layer a p50/p99/p999 view cheap enough to leave on in
//! production.
//!
//! ## Layout
//!
//! Values are bucketed log-linearly: 64 linear sub-buckets per
//! power-of-two segment (so the relative bucket width is at most 1/64 ≈
//! 1.6 %), with the first 128 values tracked exactly. 29 segments cover
//! `0 ..= 2^34 - 1` nanoseconds (≈ 17 s); anything larger saturates
//! into the top bucket. The layout is fixed at compile time so shards
//! merge by plain element-wise addition.
//!
//! ## Concurrency
//!
//! A histogram is a set of [`STRIPES`] independent shards of relaxed
//! `AtomicU64` buckets. A thread picks its shard once (round-robin at
//! first use, cached in a thread-local) and only ever adds to that
//! shard, so concurrent recorders on different cores do not bounce a
//! shared cache line. [`Histogram::snapshot`] merges the shards by
//! summing. The record path is: one branch-free bucket-index
//! computation plus **one relaxed `fetch_add`** — no locks, no
//! allocation, measured at well under 25 ns (see
//! `benches/metrics_overhead.rs` and `BENCH_PINGPONG.json`).
//!
//! All atomics in this file are monotonic statistics counters; `Relaxed`
//! is the module-wide discipline (no ordering is ever inferred from
//! them).

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Sub-bucket resolution: 2^6 = 64 linear buckets per power-of-two
/// segment.
const SUB_BITS: u32 = 6;
/// Linear sub-buckets per segment.
const SUB: usize = 1 << SUB_BITS;
/// Values below `2 * SUB` (128) land in exact single-value buckets.
const LINEAR: u64 = 2 * SUB as u64;
/// Log-linear segments above the linear range.
const SEGMENTS: usize = 27;
/// Total buckets: the linear range plus 64 per segment.
pub const BUCKETS: usize = (SEGMENTS + 2) * SUB;
/// Largest value that does not saturate into the top bucket.
pub const MAX_TRACKABLE: u64 = (1 << (SUB_BITS as usize + 1 + SEGMENTS)) - 1;

/// Independent recorder shards (power of two; threads are assigned
/// round-robin).
pub const STRIPES: usize = 8;

/// Maps a value to its bucket index. Total order preserving, saturating
/// at [`BUCKETS`]` - 1`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < LINEAR {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let seg = (msb - SUB_BITS) as usize;
    let sub = ((v >> (msb - SUB_BITS)) & (SUB as u64 - 1)) as usize;
    ((seg + 1) * SUB + sub).min(BUCKETS - 1)
}

/// Inclusive upper bound of bucket `idx` (the value [`quantile`] style
/// estimators report).
///
/// [`quantile`]: HistogramSnapshot::quantile
#[inline]
pub fn bucket_bound(idx: usize) -> u64 {
    debug_assert!(idx < BUCKETS);
    if (idx as u64) < LINEAR {
        return idx as u64;
    }
    let seg = (idx / SUB - 1) as u32;
    let sub = (idx % SUB) as u64;
    ((SUB as u64 + sub + 1) << seg) - 1
}

/// Inclusive lower bound of bucket `idx`.
#[inline]
pub fn bucket_floor(idx: usize) -> u64 {
    debug_assert!(idx < BUCKETS);
    if (idx as u64) < LINEAR {
        return idx as u64;
    }
    let seg = (idx / SUB - 1) as u32;
    let sub = (idx % SUB) as u64;
    (SUB as u64 + sub) << seg
}

/// Round-robin shard assignment, cached per thread (shared with
/// [`crate::counters::ShardedCounter`] lanes).
#[inline]
pub(crate) fn stripe_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    STRIPE.with(|c| {
        let cached = c.get();
        if cached != usize::MAX {
            return cached;
        }
        // relaxed: round-robin ticket; only uniqueness-ish matters.
        let idx = NEXT.fetch_add(1, Ordering::Relaxed) & (STRIPES - 1);
        c.set(idx);
        idx
    })
}

/// One shard: a flat array of relaxed counters.
struct Stripe {
    buckets: Box<[AtomicU64]>,
}

impl Stripe {
    fn new() -> Stripe {
        Stripe {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// A lock-free, always-on log-linear histogram (see module docs).
pub struct Histogram {
    stripes: Box<[Stripe]>,
}

impl Histogram {
    /// Creates an empty histogram (allocates `STRIPES * BUCKETS`
    /// counters; create once and cache, never per-operation).
    pub fn new() -> Histogram {
        Histogram {
            stripes: (0..STRIPES).map(|_| Stripe::new()).collect(),
        }
    }

    /// Records one value. One relaxed `fetch_add`; zero allocation.
    #[inline]
    pub fn record(&self, value: u64) {
        let idx = bucket_index(value);
        self.stripes[stripe_index()].buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Starts a timer that records elapsed nanoseconds into this
    /// histogram when dropped.
    #[inline]
    pub fn timer(&self) -> HistTimer<'_> {
        HistTimer {
            hist: self,
            start: Instant::now(),
        }
    }

    /// Merges all shards into an owned snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = vec![0u64; BUCKETS];
        for stripe in self.stripes.iter() {
            for (acc, b) in buckets.iter_mut().zip(stripe.buckets.iter()) {
                *acc += b.load(Ordering::Relaxed);
            }
        }
        HistogramSnapshot::from_buckets(buckets)
    }

    /// Resets every bucket to zero. Concurrent recorders may leave a few
    /// counts behind; intended for bench harness epochs, not hot paths.
    pub fn reset(&self) {
        for stripe in self.stripes.iter() {
            for b in stripe.buckets.iter() {
                b.store(0, Ordering::Relaxed);
            }
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &s.count())
            .field("p50", &s.quantile(0.5))
            .field("p99", &s.quantile(0.99))
            .finish()
    }
}

/// Records elapsed wall-clock nanoseconds into a [`Histogram`] on drop.
pub struct HistTimer<'a> {
    hist: &'a Histogram,
    start: Instant,
}

impl HistTimer<'_> {
    /// Nanoseconds elapsed so far.
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }
}

impl Drop for HistTimer<'_> {
    #[inline]
    fn drop(&mut self) {
        self.hist.record(self.elapsed_ns());
    }
}

/// An owned, mergeable point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
}

impl HistogramSnapshot {
    /// Builds a snapshot from a dense bucket vector (len [`BUCKETS`]).
    pub fn from_buckets(buckets: Vec<u64>) -> HistogramSnapshot {
        assert_eq!(buckets.len(), BUCKETS, "bucket layout mismatch");
        let count = buckets.iter().sum();
        HistogramSnapshot { buckets, count }
    }

    /// An empty snapshot.
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: vec![0; BUCKETS],
            count: 0,
        }
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Element-wise merge (shards and snapshots merge associatively and
    /// commutatively: plain vector addition).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
    }

    /// Nearest-rank quantile estimate, `q` in `[0, 1]`. Returns the
    /// inclusive upper bound of the bucket holding the rank — i.e. an
    /// overestimate by at most one bucket width (≤ 1/64 relative).
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bound(idx);
            }
        }
        bucket_bound(BUCKETS - 1)
    }

    /// Upper bound of the highest non-empty bucket (0 when empty).
    pub fn max(&self) -> u64 {
        match self.buckets.iter().rposition(|&c| c > 0) {
            Some(idx) => bucket_bound(idx),
            None => 0,
        }
    }

    /// Lower bound of the lowest non-empty bucket (0 when empty).
    pub fn min(&self) -> u64 {
        match self.buckets.iter().position(|&c| c > 0) {
            Some(idx) => bucket_floor(idx),
            None => 0,
        }
    }

    /// Approximate sum of recorded values (bucket midpoints).
    pub fn sum_approx(&self) -> f64 {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(idx, &c)| {
                let mid = (bucket_floor(idx) as f64 + bucket_bound(idx) as f64) / 2.0;
                mid * c as f64
            })
            .sum()
    }

    /// Approximate mean (0.0 when empty).
    pub fn mean_approx(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_approx() / self.count as f64
        }
    }

    /// Non-empty buckets as `(inclusive upper bound, count)` pairs, in
    /// ascending order — the sparse form exports render.
    pub fn nonzero(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(idx, &c)| (bucket_bound(idx), c))
            .collect()
    }

    /// Count in the saturated top bucket (values above [`MAX_TRACKABLE`]
    /// land here).
    pub fn saturated(&self) -> u64 {
        self.buckets[BUCKETS - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_range_is_exact() {
        for v in 0..LINEAR {
            let idx = bucket_index(v);
            assert_eq!(idx as u64, v);
            assert_eq!(bucket_floor(idx), v);
            assert_eq!(bucket_bound(idx), v);
        }
    }

    #[test]
    fn buckets_are_contiguous_and_ordered() {
        // Every value maps into a bucket whose [floor, bound] contains it,
        // and bucket indices are monotone in the value.
        let mut prev_idx = 0;
        let mut v = 0u64;
        while v < 1 << 20 {
            let idx = bucket_index(v);
            assert!(idx >= prev_idx, "index not monotone at {v}");
            assert!(bucket_floor(idx) <= v && v <= bucket_bound(idx));
            prev_idx = idx;
            v += 1 + v / 97; // dense at the bottom, sparse higher up
        }
        // Bucket edges meet exactly: bound(i) + 1 == floor(i + 1).
        for idx in 0..BUCKETS - 1 {
            assert_eq!(bucket_bound(idx) + 1, bucket_floor(idx + 1), "at {idx}");
        }
    }

    #[test]
    fn relative_width_is_bounded() {
        for idx in LINEAR as usize..BUCKETS - 1 {
            let lo = bucket_floor(idx);
            let hi = bucket_bound(idx);
            let width = hi - lo + 1;
            assert!(
                width as f64 / lo as f64 <= 1.0 / 64.0 + 1e-9,
                "bucket {idx} too wide: [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn saturation_at_top_bucket() {
        let h = Histogram::new();
        h.record(MAX_TRACKABLE);
        h.record(MAX_TRACKABLE + 1);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count(), 3);
        assert_eq!(s.saturated(), 3);
        assert_eq!(s.quantile(1.0), bucket_bound(BUCKETS - 1));
        assert_eq!(s.max(), bucket_bound(BUCKETS - 1));
    }

    #[test]
    fn quantiles_on_known_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        let p50 = s.quantile(0.5);
        let p99 = s.quantile(0.99);
        // Estimates overshoot by at most one bucket width (≤ 1/64).
        assert!((500..=508).contains(&p50), "p50 = {p50}");
        assert!((990..=1007).contains(&p99), "p99 = {p99}");
        assert_eq!(s.quantile(0.0), 1);
        assert!(s.min() <= 1 && s.max() >= 1000);
    }

    #[test]
    fn empty_histogram_is_sane() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.mean_approx(), 0.0);
        assert!(s.nonzero().is_empty());
    }

    #[test]
    fn timer_records_once() {
        let h = Histogram::new();
        {
            let _t = h.timer();
        }
        assert_eq!(h.snapshot().count(), 1);
    }

    #[test]
    fn reset_zeroes() {
        let h = Histogram::new();
        h.record(7);
        h.reset();
        assert_eq!(h.snapshot().count(), 0);
    }

    #[test]
    fn concurrent_recorders_lose_nothing() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1000 + i % 100);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.snapshot().count(), 40_000);
    }
}
