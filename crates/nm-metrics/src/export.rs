//! Snapshot rendering: OpenMetrics text and structured JSON.
//!
//! Both renderers work on a [`MetricsSnapshot`] — take one with
//! [`crate::metrics`]`().snapshot()` and serve/write the result. Metric
//! names use the stack's dotted form (`core.send_ns`); OpenMetrics
//! output mangles them to `nomad_core_send_ns` per the exposition
//! format's `[a-zA-Z0-9_]` charset.

use crate::hist::HistogramSnapshot;
use crate::registry::MetricsSnapshot;

/// `core.send_ns` → `nomad_core_send_ns`.
fn om_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 6);
    out.push_str("nomad_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Formats an `f64` for both exports: finite, shortest round-trip form.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "0".to_string()
    }
}

fn om_histogram(out: &mut String, name: &str, h: &HistogramSnapshot) {
    let n = om_name(name);
    out.push_str(&format!("# TYPE {n} histogram\n"));
    let mut cumulative = 0u64;
    for (le, count) in h.nonzero() {
        cumulative += count;
        out.push_str(&format!("{n}_bucket{{le=\"{le}\"}} {cumulative}\n"));
    }
    out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
    out.push_str(&format!("{n}_sum {}\n", fmt_f64(h.sum_approx())));
    out.push_str(&format!("{n}_count {}\n", h.count()));
}

/// Renders a snapshot as OpenMetrics exposition text (counters,
/// gauges, histograms with sparse cumulative buckets, derived
/// `*_per_sec` rate gauges), terminated by `# EOF`.
pub fn to_openmetrics(s: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, v) in &s.counters {
        let n = om_name(name);
        out.push_str(&format!("# TYPE {n} counter\n{n}_total {v}\n"));
    }
    for (name, r) in &s.rates {
        let n = format!("{}_per_sec", om_name(name));
        out.push_str(&format!("# TYPE {n} gauge\n{n} {}\n", fmt_f64(*r)));
    }
    for (name, v) in &s.gauges {
        let n = om_name(name);
        out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
    }
    for (name, h) in &s.hists {
        om_histogram(&mut out, name, h);
    }
    out.push_str("# EOF\n");
    out
}

/// Minimal JSON string escaping (metric names are ASCII identifiers,
/// but be safe).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a snapshot as structured JSON:
///
/// ```json
/// {
///   "counters": {"core.sends": 12},
///   "rates_per_sec": {"core.sends": 240.0},
///   "gauges": {"progress.offload_backlog": 0},
///   "histograms": {
///     "core.send_ns": {"count": 12, "p50": 410, "p90": 520,
///                       "p99": 1023, "p999": 1023, "min": 380,
///                       "max": 1023, "mean": 455.2}
///   }
/// }
/// ```
pub fn to_json(s: &MetricsSnapshot) -> String {
    let mut out = String::from("{\n  \"counters\": {");
    let items: Vec<String> = s
        .counters
        .iter()
        .map(|(n, v)| format!("{}: {v}", json_str(n)))
        .collect();
    out.push_str(&items.join(", "));
    out.push_str("},\n  \"rates_per_sec\": {");
    let items: Vec<String> = s
        .rates
        .iter()
        .map(|(n, r)| format!("{}: {}", json_str(n), fmt_f64(*r)))
        .collect();
    out.push_str(&items.join(", "));
    out.push_str("},\n  \"gauges\": {");
    let items: Vec<String> = s
        .gauges
        .iter()
        .map(|(n, v)| format!("{}: {v}", json_str(n)))
        .collect();
    out.push_str(&items.join(", "));
    out.push_str("},\n  \"histograms\": {\n");
    let items: Vec<String> = s
        .hists
        .iter()
        .map(|(n, h)| {
            format!(
                "    {}: {{\"count\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \
                 \"p999\": {}, \"min\": {}, \"max\": {}, \"mean\": {}}}",
                json_str(n),
                h.count(),
                h.quantile(0.5),
                h.quantile(0.9),
                h.quantile(0.99),
                h.quantile(0.999),
                h.min(),
                h.max(),
                fmt_f64(h.mean_approx()),
            )
        })
        .collect();
    out.push_str(&items.join(",\n"));
    out.push_str("\n  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    fn sample_snapshot() -> MetricsSnapshot {
        let h = Histogram::new();
        for v in [10, 20, 30, 1000, 5000] {
            h.record(v);
        }
        MetricsSnapshot {
            counters: vec![("core.sends".into(), 12)],
            rates: vec![("core.sends".into(), 240.5)],
            gauges: vec![("progress.offload_backlog".into(), 3)],
            hists: vec![("core.send_ns".into(), h.snapshot())],
        }
    }

    #[test]
    fn openmetrics_shape() {
        let text = to_openmetrics(&sample_snapshot());
        assert!(text.contains("# TYPE nomad_core_sends counter"));
        assert!(text.contains("nomad_core_sends_total 12"));
        assert!(text.contains("nomad_core_sends_per_sec 240.5"));
        assert!(text.contains("nomad_progress_offload_backlog 3"));
        assert!(text.contains("# TYPE nomad_core_send_ns histogram"));
        assert!(text.contains("nomad_core_send_ns_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("nomad_core_send_ns_count 5"));
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn openmetrics_buckets_are_cumulative() {
        let text = to_openmetrics(&sample_snapshot());
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("nomad_core_send_ns_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
        assert_eq!(*counts.last().unwrap(), 5);
    }

    #[test]
    fn json_shape() {
        let text = to_json(&sample_snapshot());
        assert!(text.contains("\"core.sends\": 12"));
        assert!(text.contains("\"rates_per_sec\""));
        assert!(text.contains("\"progress.offload_backlog\": 3"));
        assert!(text.contains("\"count\": 5"));
        assert!(text.contains("\"p50\""));
        // Name mangling never happens in JSON.
        assert!(text.contains("core.send_ns"));
    }

    #[test]
    fn json_escapes_special_chars() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }
}
