//! The record path must be allocation-free.
//!
//! A counting wrapper around the system allocator runs as this test
//! binary's global allocator; once metric handles are resolved, a burst
//! of `record`/`incr`/`set` calls (including the first call from a
//! fresh thread, which assigns its stripe) must not allocate at all.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to the System allocator; the counter is a
// relaxed side effect with no influence on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // relaxed: diagnostic counter, read only after threads join.
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarding the caller's layout contract unchanged.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: forwarding the caller's layout contract unchanged.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarding the caller's layout contract unchanged.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

// One test function on purpose: the allocation counter is global, so a
// second #[test] running concurrently would bleed its setup allocations
// into the measured region.
#[test]
fn record_path_does_not_allocate() {
    // Resolve handles first: registry lookups and histogram creation
    // allocate by design (cold path).
    let hist = nm_metrics::metrics().histogram("test.noalloc.hist");
    let ctr = nm_metrics::metrics().counter("test.noalloc.ctr");
    let sharded = nm_metrics::metrics().sharded_counter("test.noalloc.sharded");
    let gauge = nm_metrics::metrics().gauge("test.noalloc.gauge");
    let stats = nm_metrics::LockStats::new();

    // Warm this thread's stripe assignment (a thread-local Cell; its
    // first use must not allocate either, but warm it anyway so the
    // measured region is purely the record fast path). The first
    // record_acquire also lazily registers the global lock-aggregate
    // sharded counters — a one-time cold-path allocation by design.
    hist.record(0);
    stats.record_acquire(false);

    // The counter is process-wide, so an unrelated runtime thread can
    // drop a stray allocation into the measured window. Retry a few
    // times: a real record-path allocation repeats on every attempt
    // (and would count in the hundreds of thousands, not single digits).
    let mut measured = u64::MAX;
    for _ in 0..5 {
        let before = allocs();
        for i in 0..100_000u64 {
            hist.record(i % 4096);
            ctr.incr();
            sharded.add(2);
            gauge.set(i as i64);
            stats.record_acquire(i % 7 == 0);
        }
        measured = allocs() - before;
        if measured == 0 {
            break;
        }
    }
    assert_eq!(measured, 0, "record path allocated {measured} times");

    // A fresh thread's very first record assigns its stripe through a
    // const-initialized thread-local Cell — still no allocation.
    let hist = nm_metrics::metrics().histogram("test.noalloc.fresh");
    let h = std::thread::Builder::new()
        .name("noalloc-fresh".into())
        .spawn(move || {
            let before = allocs();
            for i in 0..1_000u64 {
                hist.record(i);
            }
            allocs() - before
        })
        .expect("spawn");
    let delta = h.join().expect("join");
    assert_eq!(delta, 0, "fresh-thread record path allocated {delta} times");
}
