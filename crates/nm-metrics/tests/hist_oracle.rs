//! Histogram correctness against a sorted-vector oracle.
//!
//! The satellite contract for the metrics layer: quantile estimates
//! must stay within one log-linear bucket (≤ 1/64 relative) of the
//! exact nearest-rank percentile, shard merges must be associative, the
//! top bucket must saturate, and the record path must not allocate
//! (covered separately in `tests/no_alloc.rs`).

use proptest::prelude::*;

use nm_metrics::{bucket_bound, bucket_floor, bucket_index, Histogram, HistogramSnapshot};

/// Exact nearest-rank percentile over a sorted sample vector — the
/// oracle the histogram is checked against.
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// The histogram's quantile must land in the same bucket as the oracle
/// value: estimate ∈ [oracle, bucket_bound(bucket(oracle))].
fn check_quantile(h: &HistogramSnapshot, sorted: &[u64], q: f64) {
    let exact = oracle_quantile(sorted, q);
    let est = h.quantile(q);
    let hi = bucket_bound(bucket_index(exact));
    let lo = bucket_floor(bucket_index(exact));
    assert!(
        est >= lo && est <= hi,
        "q={q}: estimate {est} outside bucket [{lo}, {hi}] of exact {exact}"
    );
    // Relative error bound: one bucket width, ≤ 1/64 above the linear
    // range (exact below it).
    let err = est.abs_diff(exact) as f64;
    assert!(
        err <= (exact as f64 / 64.0).max(0.0) + 1.0,
        "q={q}: |{est} - {exact}| = {err} exceeds the 1/64 bound"
    );
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        .. ProptestConfig::default()
    })]

    /// Quantiles track the sorted-vector oracle at every probe point,
    /// across magnitudes from exact-linear to multi-second.
    #[test]
    fn quantiles_track_oracle(
        raw in prop::collection::vec((0u64..5, 1u64..1_000_000), 1..400),
    ) {
        // Spread samples across magnitudes: value = base << (3 * octave).
        let samples: Vec<u64> = raw
            .iter()
            .map(|&(octave, base)| base << (3 * octave))
            .collect();
        let h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count(), samples.len() as u64);

        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            check_quantile(&snap, &sorted, q);
        }
        // min/max bracket the true extremes within their buckets.
        prop_assert!(snap.min() <= sorted[0]);
        prop_assert!(snap.max() >= *sorted.last().unwrap());
    }

    /// Merging shard snapshots is associative and commutative: any
    /// grouping of the same records yields the identical snapshot.
    #[test]
    fn shard_merge_is_associative(
        a in prop::collection::vec(0u64..1_000_000, 0..100),
        b in prop::collection::vec(0u64..1_000_000, 0..100),
        c in prop::collection::vec(0u64..1_000_000, 0..100),
    ) {
        let snap = |vals: &[u64]| {
            let h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h.snapshot()
        };
        // (a ⊕ b) ⊕ c
        let mut ab = snap(&a);
        ab.merge(&snap(&b));
        ab.merge(&snap(&c));
        // a ⊕ (b ⊕ c)
        let mut bc = snap(&b);
        bc.merge(&snap(&c));
        let mut a_bc = snap(&a);
        a_bc.merge(&bc);
        prop_assert_eq!(&ab, &a_bc);
        // c ⊕ b ⊕ a (commutativity)
        let mut cba = snap(&c);
        cba.merge(&snap(&b));
        cba.merge(&snap(&a));
        prop_assert_eq!(&ab, &cba);
        // ...and all equal recording everything into one histogram.
        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(&ab, &snap(&all));
    }
}

#[test]
fn saturation_preserves_count_and_order() {
    let h = Histogram::new();
    h.record(100);
    for _ in 0..10 {
        h.record(u64::MAX);
    }
    let s = h.snapshot();
    assert_eq!(s.count(), 11);
    assert_eq!(s.saturated(), 10);
    assert_eq!(s.quantile(0.01), 100, "small value still visible");
    assert_eq!(
        s.quantile(1.0),
        nm_metrics::bucket_bound(nm_metrics::BUCKETS - 1),
        "saturated values report the top bucket bound"
    );
}

#[test]
fn multithreaded_shards_equal_single_thread() {
    use std::sync::Arc;
    // The same multiset of values recorded from 8 threads (spread over
    // all stripes) must snapshot identically to a single-thread run.
    let mt = Arc::new(Histogram::new());
    let threads: Vec<_> = (0..8u64)
        .map(|t| {
            let h = Arc::clone(&mt);
            std::thread::spawn(move || {
                for i in 0..5_000u64 {
                    h.record(t * 1_000 + (i % 997));
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let st = Histogram::new();
    for t in 0..8u64 {
        for i in 0..5_000u64 {
            st.record(t * 1_000 + (i % 997));
        }
    }
    assert_eq!(mt.snapshot(), st.snapshot());
}
