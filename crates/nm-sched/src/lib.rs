//! Two-level task scheduler with progression hooks (Marcel-style).
//!
//! The paper's thread library, MARCEL, matters to the communication study
//! for two properties, both reproduced here:
//!
//! 1. **Two-level scheduling** — a pool of kernel worker threads (each
//!    optionally bound to a core), each with a local work-stealing run
//!    queue fed from a global injector. Application tasks are lightweight
//!    closures scheduled onto the pool.
//! 2. **Progression hooks** — "hooks usable for asynchronous communication
//!    progression": callbacks invoked when a worker becomes *idle*, at
//!    every *context switch* (task boundary or explicit yield), and on
//!    *timer* ticks. PIOMan (`nm-progress`) registers itself on these hooks
//!    so the network is polled from otherwise-wasted cycles.
//!
//! ```
//! use nm_sched::{Scheduler, SchedulerConfig, HookEvent};
//! use std::sync::Arc;
//! use std::sync::atomic::{AtomicUsize, Ordering};
//!
//! let sched = Scheduler::new(SchedulerConfig::default().workers(2));
//! let hits = Arc::new(AtomicUsize::new(0));
//! let h = Arc::clone(&hits);
//! sched.add_hook(move |ev| {
//!     if matches!(ev, HookEvent::Idle { .. }) {
//!         h.fetch_add(1, Ordering::Relaxed);
//!     }
//! });
//! let task = sched.spawn_with_handle(|| 6 * 7);
//! assert_eq!(task.join(), 42);
//! sched.shutdown();
//! ```

#![warn(missing_docs)]

mod handle;
mod hooks;
mod scheduler;

pub use handle::TaskHandle;
pub use hooks::{HookEvent, HookRegistry};
pub use scheduler::{Scheduler, SchedulerConfig, WorkerCtx, WorkerStats};
