//! Progression hook registry.

use std::sync::Arc;

use parking_lot::RwLock;

/// Where in the scheduler a hook fires — the paper's "CPU idleness,
/// context switches, timer interrupts" (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HookEvent {
    /// A worker found no runnable task.
    Idle {
        /// Index of the idle worker.
        worker: usize,
    },
    /// A task boundary or explicit yield on a worker.
    Yield {
        /// Index of the yielding worker.
        worker: usize,
    },
    /// The periodic timer tick.
    Timer,
}

type Hook = Arc<dyn Fn(HookEvent) + Send + Sync>;

/// A list of progression callbacks fired at scheduler events.
///
/// Registration is rare, firing is hot: the registry is read-optimized
/// (an `RwLock` around an immutable snapshot that is cloned on write).
#[derive(Default)]
pub struct HookRegistry {
    hooks: RwLock<Arc<Vec<Hook>>>,
}

impl HookRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a hook; it will fire on every subsequent event.
    pub fn add(&self, hook: impl Fn(HookEvent) + Send + Sync + 'static) {
        let mut guard = self.hooks.write();
        let mut next: Vec<Hook> = (**guard).clone();
        next.push(Arc::new(hook));
        *guard = Arc::new(next);
    }

    /// Fires all hooks for `event`.
    #[inline]
    pub fn fire(&self, event: HookEvent) {
        // Snapshot under the read lock, run outside it: a hook may
        // recursively consult the scheduler without deadlocking.
        let snapshot = Arc::clone(&self.hooks.read());
        for hook in snapshot.iter() {
            hook(event);
        }
    }

    /// Number of registered hooks.
    pub fn len(&self) -> usize {
        self.hooks.read().len()
    }

    /// `true` when no hook is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for HookRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HookRegistry")
            .field("hooks", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn hooks_fire_in_registration_order() {
        let reg = HookRegistry::new();
        let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
        for i in 0..3 {
            let log = Arc::clone(&log);
            reg.add(move |_| log.lock().push(i));
        }
        reg.fire(HookEvent::Timer);
        assert_eq!(*log.lock(), vec![0, 1, 2]);
    }

    #[test]
    fn hook_receives_event_payload() {
        let reg = HookRegistry::new();
        let seen = Arc::new(parking_lot::Mutex::new(None));
        let s = Arc::clone(&seen);
        reg.add(move |ev| *s.lock() = Some(ev));
        reg.fire(HookEvent::Idle { worker: 3 });
        assert_eq!(*seen.lock(), Some(HookEvent::Idle { worker: 3 }));
    }

    #[test]
    fn hook_may_register_another_hook_reentrantly() {
        let reg = Arc::new(HookRegistry::new());
        let count = Arc::new(AtomicUsize::new(0));
        let (r2, c2) = (Arc::clone(&reg), Arc::clone(&count));
        reg.add(move |_| {
            if c2.fetch_add(1, Ordering::SeqCst) == 0 {
                let c3 = Arc::clone(&c2);
                r2.add(move |_| {
                    c3.fetch_add(100, Ordering::SeqCst);
                });
            }
        });
        reg.fire(HookEvent::Timer); // registers the second hook
        reg.fire(HookEvent::Timer); // both fire
        assert_eq!(count.load(Ordering::SeqCst), 102);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn empty_registry_reports_empty() {
        let reg = HookRegistry::new();
        assert!(reg.is_empty());
        reg.fire(HookEvent::Timer); // must not panic
        reg.add(|_| {});
        assert!(!reg.is_empty());
    }
}
