//! The worker pool: global injector + per-worker stealing deques.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam_deque::{Injector, Stealer, Worker as Deque};
use parking_lot::{Condvar, Mutex};

use nm_sync::stats::Counter;

use crate::handle::TaskHandle;
use crate::hooks::{HookEvent, HookRegistry};

/// Per-worker execution counters.
#[derive(Debug, Default)]
pub struct WorkerStats {
    /// Tasks this worker executed.
    pub executed: Counter,
    /// Tasks it stole from a sibling's deque.
    pub stolen: Counter,
}

type Task = Box<dyn FnOnce(&WorkerCtx) + Send + 'static>;

/// Scheduler construction parameters.
#[derive(Clone, Debug)]
pub struct SchedulerConfig {
    /// Number of worker threads.
    pub workers: usize,
    /// Optional per-worker core binding (length must equal `workers`).
    pub bind_cores: Option<Vec<usize>>,
    /// Period of the timer hook; `None` disables the timer thread.
    pub timer_interval: Option<Duration>,
    /// How long an idle worker sleeps before re-firing its idle hook.
    ///
    /// Idle hooks fire once per wakeup, so this bounds the progression
    /// latency contributed by a sleeping pool.
    pub idle_park: Duration,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            bind_cores: None,
            timer_interval: None,
            idle_park: Duration::from_micros(100),
        }
    }
}

impl SchedulerConfig {
    /// Sets the worker count.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Binds worker `i` to `cores[i]`.
    pub fn bind_cores(mut self, cores: Vec<usize>) -> Self {
        self.bind_cores = Some(cores);
        self
    }

    /// Enables the timer hook at the given period.
    pub fn timer_interval(mut self, period: Duration) -> Self {
        self.timer_interval = Some(period);
        self
    }
}

/// Per-worker context passed to every task.
pub struct WorkerCtx {
    /// Index of the worker executing the task.
    pub worker: usize,
    inner: Arc<Inner>,
}

impl WorkerCtx {
    /// Cooperative yield: fires the context-switch hooks (where PIOMan
    /// polls the network in the paper) without descheduling the task.
    pub fn yield_now(&self) {
        nm_trace::trace_event!(CtxSwitch, self.worker);
        self.inner.hooks.fire(HookEvent::Yield {
            worker: self.worker,
        });
    }

    /// Spawns a subtask onto the pool.
    pub fn spawn(&self, f: impl FnOnce() + Send + 'static) {
        self.inner.spawn_task(Box::new(move |_ctx| f()));
    }
}

struct Inner {
    injector: Injector<Task>,
    stealers: Vec<Stealer<Task>>,
    /// Per-worker execution counters.
    worker_stats: Vec<WorkerStats>,
    hooks: HookRegistry,
    shutdown: AtomicBool,
    /// Sleeping workers wait here; spawns notify it.
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
    idle_park: Duration,
}

impl Inner {
    fn spawn_task(&self, task: Task) {
        self.injector.push(task);
        let _g = self.idle_lock.lock();
        self.idle_cv.notify_one();
    }
}

/// A two-level scheduler: a global injector feeding per-worker
/// work-stealing deques, with progression hooks on idle/yield/timer.
pub struct Scheduler {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
    timer: Option<JoinHandle<()>>,
}

impl Scheduler {
    /// Starts the worker pool.
    pub fn new(config: SchedulerConfig) -> Self {
        assert!(config.workers > 0, "at least one worker required");
        if let Some(cores) = &config.bind_cores {
            assert_eq!(
                cores.len(),
                config.workers,
                "bind_cores length must equal worker count"
            );
        }

        let deques: Vec<Deque<Task>> = (0..config.workers).map(|_| Deque::new_fifo()).collect();
        let stealers = deques.iter().map(|d| d.stealer()).collect();
        let inner = Arc::new(Inner {
            injector: Injector::new(),
            stealers,
            worker_stats: (0..config.workers)
                .map(|_| WorkerStats::default())
                .collect(),
            hooks: HookRegistry::new(),
            shutdown: AtomicBool::new(false),
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
            idle_park: config.idle_park,
        });

        let workers = deques
            .into_iter()
            .enumerate()
            .map(|(i, deque)| {
                let inner = Arc::clone(&inner);
                let core = config.bind_cores.as_ref().map(|c| c[i]);
                std::thread::Builder::new()
                    .name(format!("nm-sched-{i}"))
                    .spawn(move || worker_loop(i, deque, inner, core))
                    .expect("failed to spawn scheduler worker")
            })
            .collect();

        let timer = config.timer_interval.map(|period| {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("nm-sched-timer".into())
                .spawn(move || {
                    while !inner.shutdown.load(Ordering::Acquire) {
                        std::thread::sleep(period);
                        if inner.shutdown.load(Ordering::Acquire) {
                            break;
                        }
                        inner.hooks.fire(HookEvent::Timer);
                    }
                })
                .expect("failed to spawn scheduler timer")
        });

        Scheduler {
            inner,
            workers,
            timer,
        }
    }

    /// Registers a progression hook (fires on idle, yield and timer
    /// events). This is how the I/O manager attaches itself.
    pub fn add_hook(&self, hook: impl Fn(HookEvent) + Send + Sync + 'static) {
        self.inner.hooks.add(hook);
    }

    /// Spawns a fire-and-forget task.
    pub fn spawn(&self, f: impl FnOnce() + Send + 'static) {
        self.inner.spawn_task(Box::new(move |_ctx| f()));
    }

    /// Spawns a task that receives its [`WorkerCtx`] (for yields and
    /// subtask spawning).
    pub fn spawn_ctx(&self, f: impl FnOnce(&WorkerCtx) + Send + 'static) {
        self.inner.spawn_task(Box::new(f));
    }

    /// Spawns a task and returns a handle to its result.
    pub fn spawn_with_handle<T: Send + 'static>(
        &self,
        f: impl FnOnce() -> T + Send + 'static,
    ) -> TaskHandle<T> {
        let (handle, slot) = TaskHandle::new();
        self.inner.spawn_task(Box::new(move |_ctx| {
            slot.complete(f());
        }));
        handle
    }

    /// Number of workers.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Execution counters of worker `i`.
    pub fn worker_stats(&self, i: usize) -> &WorkerStats {
        &self.inner.worker_stats[i]
    }

    /// Total tasks executed across all workers.
    pub fn total_executed(&self) -> u64 {
        self.inner
            .worker_stats
            .iter()
            .map(|w| w.executed.get())
            .sum()
    }

    /// Stops all workers after the queues drain of currently stolen tasks,
    /// and joins them. Pending never-started tasks are dropped.
    pub fn shutdown(self) {
        self.inner.shutdown.store(true, Ordering::Release);
        {
            let _g = self.inner.idle_lock.lock();
            self.inner.idle_cv.notify_all();
        }
        for w in self.workers {
            let _ = w.join();
        }
        if let Some(t) = self.timer {
            let _ = t.join();
        }
    }
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("workers", &self.workers.len())
            .field("timer", &self.timer.is_some())
            .finish()
    }
}

fn worker_loop(index: usize, local: Deque<Task>, inner: Arc<Inner>, core: Option<usize>) {
    if let Some(core) = core {
        // Binding failures (e.g. restricted cpuset) are not fatal: the
        // scheduler still works, placement just becomes best-effort.
        let _ = nm_topo::affinity::bind_current_thread(core);
    }
    let ctx = WorkerCtx {
        worker: index,
        inner: Arc::clone(&inner),
    };
    loop {
        if let Some(task) = find_task(index, &local, &inner) {
            inner.worker_stats[index].executed.incr();
            task(&ctx);
            // Task boundary = context switch point.
            nm_trace::trace_event!(CtxSwitch, index);
            inner.hooks.fire(HookEvent::Yield { worker: index });
            continue;
        }
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Nothing runnable: this is the "idle core" the paper exploits.
        nm_trace::trace_event!(IdleHook, index);
        inner.hooks.fire(HookEvent::Idle { worker: index });
        let mut g = inner.idle_lock.lock();
        // Re-check under the lock to avoid sleeping through a wakeup.
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        if inner.injector.is_empty() {
            inner.idle_cv.wait_for(&mut g, inner.idle_park);
        }
    }
}

fn find_task(index: usize, local: &Deque<Task>, inner: &Inner) -> Option<Task> {
    if let Some(t) = local.pop() {
        return Some(t);
    }
    // Refill from the global injector, then steal from siblings.
    loop {
        match inner.injector.steal_batch_and_pop(local) {
            crossbeam_deque::Steal::Success(t) => return Some(t),
            crossbeam_deque::Steal::Retry => continue,
            crossbeam_deque::Steal::Empty => break,
        }
    }
    for (i, stealer) in inner.stealers.iter().enumerate() {
        if i == index {
            continue;
        }
        loop {
            match stealer.steal() {
                crossbeam_deque::Steal::Success(t) => {
                    inner.worker_stats[index].stolen.incr();
                    return Some(t);
                }
                crossbeam_deque::Steal::Retry => continue,
                crossbeam_deque::Steal::Empty => break,
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_spawned_tasks() {
        let sched = Scheduler::new(SchedulerConfig::default().workers(2));
        let count = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..100)
            .map(|_| {
                let c = Arc::clone(&count);
                sched.spawn_with_handle(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(count.load(Ordering::Relaxed), 100);
        sched.shutdown();
    }

    #[test]
    fn handle_returns_value() {
        let sched = Scheduler::new(SchedulerConfig::default().workers(1));
        let h = sched.spawn_with_handle(|| "result".to_string());
        assert_eq!(h.join(), "result");
        sched.shutdown();
    }

    #[test]
    fn try_join_before_and_after() {
        let sched = Scheduler::new(SchedulerConfig::default().workers(1));
        let gate = Arc::new(nm_sync::Semaphore::new(0));
        let g2 = Arc::clone(&gate);
        let h = sched.spawn_with_handle(move || {
            g2.acquire();
            5
        });
        let h = match h.try_join() {
            Ok(_) => panic!("task cannot be done: it is gated"),
            Err(h) => h,
        };
        gate.release();
        assert_eq!(h.join(), 5);
        sched.shutdown();
    }

    #[test]
    fn idle_hooks_fire_when_pool_is_idle() {
        let sched = Scheduler::new(SchedulerConfig::default().workers(1));
        let idles = Arc::new(AtomicUsize::new(0));
        let i2 = Arc::clone(&idles);
        sched.add_hook(move |ev| {
            if matches!(ev, HookEvent::Idle { .. }) {
                i2.fetch_add(1, Ordering::Relaxed);
            }
        });
        std::thread::sleep(Duration::from_millis(50));
        assert!(idles.load(Ordering::Relaxed) > 0, "no idle hook fired");
        sched.shutdown();
    }

    #[test]
    fn yield_hooks_fire_at_task_boundaries_and_explicit_yields() {
        let sched = Scheduler::new(SchedulerConfig::default().workers(1));
        let yields = Arc::new(AtomicUsize::new(0));
        let y2 = Arc::clone(&yields);
        sched.add_hook(move |ev| {
            if matches!(ev, HookEvent::Yield { .. }) {
                y2.fetch_add(1, Ordering::Relaxed);
            }
        });
        let done = Arc::new(nm_sync::CompletionFlag::new());
        let d2 = Arc::clone(&done);
        sched.spawn_ctx(move |ctx| {
            ctx.yield_now();
            ctx.yield_now();
            d2.signal();
        });
        done.wait(nm_sync::WaitStrategy::Passive);
        // Give the post-task boundary hook a moment.
        std::thread::sleep(Duration::from_millis(10));
        assert!(
            yields.load(Ordering::Relaxed) >= 3,
            "expected 2 explicit + 1 boundary yields, got {}",
            yields.load(Ordering::Relaxed)
        );
        sched.shutdown();
    }

    #[test]
    fn timer_hook_fires_periodically() {
        let sched = Scheduler::new(
            SchedulerConfig::default()
                .workers(1)
                .timer_interval(Duration::from_millis(5)),
        );
        let ticks = Arc::new(AtomicUsize::new(0));
        let t2 = Arc::clone(&ticks);
        sched.add_hook(move |ev| {
            if ev == HookEvent::Timer {
                t2.fetch_add(1, Ordering::Relaxed);
            }
        });
        std::thread::sleep(Duration::from_millis(100));
        let n = ticks.load(Ordering::Relaxed);
        assert!(n >= 3, "timer fired only {n} times in 100 ms");
        sched.shutdown();
    }

    #[test]
    fn subtask_spawning_from_within_task() {
        let sched = Scheduler::new(SchedulerConfig::default().workers(2));
        let count = Arc::new(AtomicUsize::new(0));
        let done = Arc::new(nm_sync::Semaphore::new(0));
        let (c2, d2) = (Arc::clone(&count), Arc::clone(&done));
        sched.spawn_ctx(move |ctx| {
            for _ in 0..10 {
                let c = Arc::clone(&c2);
                let d = Arc::clone(&d2);
                ctx.spawn(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                    d.release();
                });
            }
        });
        for _ in 0..10 {
            done.acquire();
        }
        assert_eq!(count.load(Ordering::Relaxed), 10);
        sched.shutdown();
    }

    #[test]
    fn work_distributes_across_workers() {
        let sched = Scheduler::new(SchedulerConfig::default().workers(4));
        let seen = Arc::new(parking_lot::Mutex::new(std::collections::HashSet::new()));
        let done = Arc::new(nm_sync::Semaphore::new(0));
        for _ in 0..64 {
            let (s2, d2) = (Arc::clone(&seen), Arc::clone(&done));
            sched.spawn_ctx(move |ctx| {
                s2.lock().insert(ctx.worker);
                // A little work so other workers get a chance to steal.
                std::thread::sleep(Duration::from_micros(200));
                d2.release();
            });
        }
        for _ in 0..64 {
            done.acquire();
        }
        // On a single-CPU host all tasks may still land on one worker;
        // just assert nothing panicked and at least one worker ran.
        assert!(!seen.lock().is_empty());
        sched.shutdown();
    }

    #[test]
    fn worker_stats_count_executions() {
        let sched = Scheduler::new(SchedulerConfig::default().workers(2));
        let handles: Vec<_> = (0..20).map(|_| sched.spawn_with_handle(|| ())).collect();
        for h in handles {
            h.join();
        }
        assert_eq!(sched.total_executed(), 20);
        let per_worker: u64 = (0..2).map(|i| sched.worker_stats(i).executed.get()).sum();
        assert_eq!(per_worker, 20);
        sched.shutdown();
    }

    #[test]
    fn shutdown_joins_cleanly_with_busy_tasks() {
        let sched = Scheduler::new(SchedulerConfig::default().workers(2));
        for _ in 0..8 {
            sched.spawn(|| std::thread::sleep(Duration::from_millis(5)));
        }
        sched.shutdown(); // must not hang
    }

    #[test]
    #[should_panic(expected = "bind_cores length")]
    fn mismatched_bind_cores_rejected() {
        let _ = Scheduler::new(SchedulerConfig::default().workers(2).bind_cores(vec![0]));
    }
}
