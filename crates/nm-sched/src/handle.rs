//! Join handles for scheduled tasks.

use std::sync::Arc;

use nm_sync::{CompletionFlag, SpinLock, WaitStrategy};

/// Handle to a task's eventual result.
///
/// Waiting goes through a [`CompletionFlag`], so all three waiting
/// strategies of the paper apply to task joins as well.
pub struct TaskHandle<T> {
    inner: Arc<TaskSlot<T>>,
}

pub(crate) struct TaskSlot<T> {
    pub(crate) flag: CompletionFlag,
    pub(crate) value: SpinLock<Option<T>>,
}

impl<T> TaskHandle<T> {
    pub(crate) fn new() -> (Self, Arc<TaskSlot<T>>) {
        let slot = Arc::new(TaskSlot {
            flag: CompletionFlag::new(),
            value: SpinLock::new(None),
        });
        (
            TaskHandle {
                inner: Arc::clone(&slot),
            },
            slot,
        )
    }

    /// `true` once the task has finished.
    pub fn is_done(&self) -> bool {
        self.inner.flag.is_set()
    }

    /// Waits passively for the result.
    pub fn join(self) -> T {
        self.join_with(WaitStrategy::Passive)
    }

    /// Waits for the result with an explicit strategy.
    pub fn join_with(self, strategy: WaitStrategy) -> T {
        self.inner.flag.wait(strategy);
        self.inner
            .value
            .lock()
            .take()
            .expect("task completed without a value (already joined?)")
    }

    /// Non-blocking result retrieval.
    pub fn try_join(self) -> Result<T, Self> {
        if self.is_done() {
            let v = self.inner.value.lock().take();
            match v {
                Some(v) => Ok(v),
                None => panic!("task completed without a value (already joined?)"),
            }
        } else {
            Err(self)
        }
    }
}

impl<T> TaskSlot<T> {
    pub(crate) fn complete(&self, value: T) {
        *self.value.lock() = Some(value);
        self.flag.signal();
    }
}

impl<T> std::fmt::Debug for TaskHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskHandle")
            .field("done", &self.is_done())
            .finish()
    }
}
