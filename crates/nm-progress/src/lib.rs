//! PIOMan-style I/O progression engine.
//!
//! The paper's PIOMAN "handles polling in behalf of the communication
//! library and works closely with the thread scheduler. It is able to
//! perform polling inside MARCEL hooks (when a core is idle, on context
//! switch, on timer interrupts) or within tasklets in order to exploit any
//! core of the machine."
//!
//! This crate reproduces that inventory:
//!
//! * [`ProgressEngine`] — a registry of [`PollSource`]s. Going through the
//!   engine (instead of polling the driver directly) costs the lock + list
//!   management the paper measures at ~200 ns (Fig 6).
//! * Scheduler integration — [`ProgressEngine::attach`] hooks the engine
//!   into `nm-sched`'s idle/yield/timer events.
//! * [`ProgressionThread`] — a dedicated polling thread, optionally bound
//!   to a chosen core; Fig 8's "polling on CPU n" placements.
//! * [`Tasklet`] / [`TaskletEngine`] — Linux-softirq-style deferred work
//!   with the serialization guarantees (never concurrent with itself,
//!   re-schedulable while running) whose "complex locking" the paper blames
//!   for the 2 µs offload overhead (Fig 9).
//! * [`Offloader`] — the three submission paths of Fig 9: inline,
//!   idle-core (drained by the progression engine), and tasklet.
//! * [`wait_on`] — strategy-driven waiting that composes a completion flag
//!   with engine polling (busy waiters poll the engine themselves; passive
//!   waiters rely on a progression thread or scheduler hooks).
//! * [`WakerTable`] — request-id-keyed waker registry behind the async
//!   facade: futures park their [`std::task::Waker`] here and completion
//!   delivery wakes exactly the right task, so no thread blocks per
//!   operation.
//! * [`TimerWheel`] — deadline bookkeeping polled by progression passes;
//!   drives the reliability layer's retransmit timeouts and the API's
//!   deadline-bounded waits without any per-timer thread.

#![warn(missing_docs)]

mod engine;
pub mod metrics;
mod offload;
mod progression_thread;
mod tasklet;
mod timer;
mod wait;
mod waker_table;

pub use engine::{PollOutcome, PollSource, ProgressEngine, SourceId};
pub use offload::{OffloadMode, Offloader};
pub use progression_thread::{IdlePolicy, ProgressionThread};
pub use tasklet::{Tasklet, TaskletEngine};
pub use timer::{now_ns, TimerId, TimerWheel};
pub use wait::wait_on;
pub use waker_table::WakerTable;
