//! The poll-source registry.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use nm_sync::stats::Counter;
use nm_sync::SpinLock;

/// Result of one polling pass over a source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollOutcome {
    /// The pass completed at least one event.
    Progressed,
    /// Nothing to do.
    Idle,
}

/// Something the engine polls: typically a communication core's
/// "make everything progress one step" entry point, or an [`Offloader`]
/// draining deferred submissions.
///
/// [`Offloader`]: crate::Offloader
pub trait PollSource: Send + Sync {
    /// Runs one polling pass.
    fn poll(&self) -> PollOutcome;
    /// Diagnostic name.
    fn name(&self) -> &str {
        "anonymous"
    }
}

impl<F: Fn() -> PollOutcome + Send + Sync> PollSource for F {
    fn poll(&self) -> PollOutcome {
        self()
    }
    fn name(&self) -> &str {
        "closure"
    }
}

/// Opaque registration id, used to unregister.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SourceId(u64);

type SourceList = Arc<Vec<(SourceId, Arc<dyn PollSource>)>>;

/// The progression engine: a locked list of poll sources.
///
/// `poll_all` snapshots the list under a spinlock and polls outside it, so
/// sources may re-enter the engine (e.g. an offloaded submission that
/// triggers more polling). The snapshot is an `Arc` clone — no allocation
/// on the hot path. The lock acquisition plus list traversal is precisely
/// the "management of PIOMan internal lists as well as locking" overhead
/// the paper measures in Fig 6.
pub struct ProgressEngine {
    sources: SpinLock<SourceList>,
    next_id: AtomicU64,
    polls: Counter,
    progressions: Counter,
    /// Consecutive poll passes (on this engine) with zero progress.
    empty_streak: AtomicU64,
}

impl ProgressEngine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        ProgressEngine {
            sources: SpinLock::with_class("progress.sources", Arc::new(Vec::new())),
            next_id: AtomicU64::new(0),
            polls: Counter::new(),
            progressions: Counter::new(),
            empty_streak: AtomicU64::new(0),
        }
    }

    /// Registers a source; it is polled on every subsequent pass.
    pub fn register(&self, source: Arc<dyn PollSource>) -> SourceId {
        // relaxed: unique-id allocation; the list update below is what
        // publishes the source (under its spinlock).
        let id = SourceId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let mut guard = self.sources.lock();
        let mut next = (**guard).clone();
        next.push((id, source));
        *guard = Arc::new(next);
        id
    }

    /// Removes a source. Unknown ids are ignored (unregistering twice is
    /// benign).
    pub fn unregister(&self, id: SourceId) {
        let mut guard = self.sources.lock();
        if guard.iter().any(|(sid, _)| *sid == id) {
            let next: Vec<_> = guard
                .iter()
                .filter(|(sid, _)| *sid != id)
                .cloned()
                .collect();
            *guard = Arc::new(next);
        }
    }

    /// Polls every registered source once; returns how many progressed.
    pub fn poll_all(&self) -> usize {
        // The lock is held only to clone the snapshot pointer: ~the cost
        // of one uncontended spinlock cycle plus an Arc refcount bump.
        let snapshot = Arc::clone(&*self.sources.lock());
        self.polls.incr();
        crate::metrics::polls_counter().incr();
        // The begin→end span is the paper's ~200 ns "PIOMan pass".
        nm_trace::trace_event!(PollPassBegin);
        let mut progressed = 0;
        for (_, source) in snapshot.iter() {
            if source.poll() == PollOutcome::Progressed {
                progressed += 1;
            }
        }
        if progressed > 0 {
            self.progressions.add(progressed as u64);
            crate::metrics::progressions_counter().add(progressed as u64);
            // relaxed: health diagnostics; passes may interleave freely.
            self.empty_streak.store(0, Ordering::Relaxed);
            crate::metrics::empty_poll_streak().set(0);
        } else {
            // relaxed: as above — an approximate streak under concurrent
            // pollers is acceptable for a health gauge.
            let streak = self.empty_streak.fetch_add(1, Ordering::Relaxed) + 1;
            crate::metrics::empty_poll_streak().set(streak as i64);
            crate::metrics::empty_poll_streak_max().record_max(streak as i64);
        }
        nm_trace::trace_event!(PollPassEnd, progressed);
        progressed
    }

    /// Number of registered sources.
    pub fn num_sources(&self) -> usize {
        self.sources.lock().len()
    }

    /// Total polling passes performed.
    pub fn total_polls(&self) -> u64 {
        self.polls.get()
    }

    /// Total source passes that reported progress.
    pub fn total_progressions(&self) -> u64 {
        self.progressions.get()
    }

    /// Attaches this engine to a scheduler: every idle, yield and timer
    /// event triggers a polling pass — the paper's MARCEL hooks.
    pub fn attach(self: &Arc<Self>, scheduler: &nm_sched::Scheduler) {
        let engine = Arc::clone(self);
        scheduler.add_hook(move |_event| {
            engine.poll_all();
        });
    }
}

impl Default for ProgressEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for ProgressEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgressEngine")
            .field("sources", &self.num_sources())
            .field("polls", &self.total_polls())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    struct CountingSource {
        calls: AtomicUsize,
        progress_until: usize,
    }

    impl PollSource for CountingSource {
        fn poll(&self) -> PollOutcome {
            let n = self.calls.fetch_add(1, Ordering::SeqCst);
            if n < self.progress_until {
                PollOutcome::Progressed
            } else {
                PollOutcome::Idle
            }
        }
        fn name(&self) -> &str {
            "counting"
        }
    }

    #[test]
    fn polls_all_registered_sources() {
        let engine = ProgressEngine::new();
        let a = Arc::new(CountingSource {
            calls: AtomicUsize::new(0),
            progress_until: 1,
        });
        let b = Arc::new(CountingSource {
            calls: AtomicUsize::new(0),
            progress_until: 0,
        });
        engine.register(Arc::clone(&a) as _);
        engine.register(Arc::clone(&b) as _);
        assert_eq!(engine.poll_all(), 1); // only `a` progresses
        assert_eq!(engine.poll_all(), 0);
        assert_eq!(a.calls.load(Ordering::SeqCst), 2);
        assert_eq!(b.calls.load(Ordering::SeqCst), 2);
        assert_eq!(engine.total_polls(), 2);
        assert_eq!(engine.total_progressions(), 1);
    }

    #[test]
    fn unregister_stops_polling() {
        let engine = ProgressEngine::new();
        let a = Arc::new(CountingSource {
            calls: AtomicUsize::new(0),
            progress_until: usize::MAX,
        });
        let id = engine.register(Arc::clone(&a) as _);
        engine.poll_all();
        engine.unregister(id);
        engine.unregister(id); // double unregister is benign
        engine.poll_all();
        assert_eq!(a.calls.load(Ordering::SeqCst), 1);
        assert_eq!(engine.num_sources(), 0);
    }

    #[test]
    fn closure_sources_work() {
        let engine = ProgressEngine::new();
        engine.register(Arc::new(|| PollOutcome::Idle));
        assert_eq!(engine.poll_all(), 0);
    }

    #[test]
    fn source_may_reenter_engine() {
        // A source that registers another source while being polled.
        struct Reentrant {
            engine: Arc<ProgressEngine>,
            fired: AtomicUsize,
        }
        impl PollSource for Reentrant {
            fn poll(&self) -> PollOutcome {
                if self.fired.fetch_add(1, Ordering::SeqCst) == 0 {
                    self.engine.register(Arc::new(|| PollOutcome::Idle));
                }
                PollOutcome::Idle
            }
        }
        let engine = Arc::new(ProgressEngine::new());
        engine.register(Arc::new(Reentrant {
            engine: Arc::clone(&engine),
            fired: AtomicUsize::new(0),
        }));
        engine.poll_all(); // must not deadlock
        assert_eq!(engine.num_sources(), 2);
    }

    #[test]
    fn concurrent_register_unregister_poll() {
        use std::sync::atomic::AtomicBool;
        let engine = Arc::new(ProgressEngine::new());
        let stop = Arc::new(AtomicBool::new(false));
        let pollers: Vec<_> = (0..2)
            .map(|_| {
                let engine = Arc::clone(&engine);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        engine.poll_all();
                        std::thread::yield_now();
                    }
                })
            })
            .collect();
        for _ in 0..200 {
            let id = engine.register(Arc::new(|| PollOutcome::Progressed));
            engine.unregister(id);
        }
        stop.store(true, Ordering::Release);
        for p in pollers {
            p.join().unwrap();
        }
        assert_eq!(engine.num_sources(), 0);
    }

    #[test]
    fn attach_polls_from_scheduler_hooks() {
        let engine = Arc::new(ProgressEngine::new());
        let polled = Arc::new(AtomicUsize::new(0));
        let p2 = Arc::clone(&polled);
        engine.register(Arc::new(move || {
            p2.fetch_add(1, Ordering::Relaxed);
            PollOutcome::Idle
        }));
        let sched = nm_sched::Scheduler::new(nm_sched::SchedulerConfig::default().workers(1));
        engine.attach(&sched);
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(
            polled.load(Ordering::Relaxed) > 0,
            "idle hooks never polled the engine"
        );
        sched.shutdown();
    }
}
