//! [`TimerWheel`] — deadline bookkeeping for the progression engine.
//!
//! The reliability layer needs retransmit timeouts and the API surface
//! needs deadline-bounded waits, but the stack is poll-driven: nothing
//! blocks per timer. This wheel is the poll-side half of that design —
//! callers [`schedule`](TimerWheel::schedule) a deadline with an
//! attached value, every progression pass asks
//! [`pop_due`](TimerWheel::pop_due) for the values whose deadline has
//! passed, and acts on them inline. Cancellation is O(log n) by
//! [`TimerId`]; the wheel never invokes callbacks, so no foreign code
//! runs under its lock.
//!
//! Time is a caller-supplied monotonic nanosecond count ([`now_ns`] is
//! the convenience wall-clock for production; the discrete-event
//! simulator and unit tests pass virtual times), so the wheel itself is
//! fully deterministic.
//!
//! # Locking
//!
//! One spinlock classed `progress.timers` (see `docs/CONCURRENCY.md`).
//! It is a leaf lock: the wheel calls nothing while holding it.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use nm_sync::SpinLock;
use nm_trace::trace_event;

/// Handle to one scheduled deadline (for cancellation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

/// Monotonic nanoseconds since an arbitrary process-local anchor.
///
/// First call anchors the epoch; all later calls are relative to it, so
/// the values are small, strictly meaningful only within the process,
/// and safe to mix with deadlines derived from each other.
pub fn now_ns() -> u64 {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    ANCHOR.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

struct WheelState<T> {
    /// Deadline-ordered entries, keyed (deadline, id) so equal deadlines
    /// coexist and fire in schedule order.
    entries: BTreeMap<(u64, u64), T>,
    next_id: u64,
}

/// A deadline → value map polled by the progression engine.
pub struct TimerWheel<T> {
    state: SpinLock<WheelState<T>>,
    /// Advisory entry count, maintained outside the lock so `len` /
    /// `is_empty` never acquire it (they are called from contexts that
    /// already hold other locks).
    pending: AtomicUsize,
}

impl<T> TimerWheel<T> {
    /// Creates an empty wheel.
    pub fn new() -> Self {
        TimerWheel {
            state: SpinLock::with_class(
                "progress.timers",
                WheelState {
                    entries: BTreeMap::new(),
                    next_id: 1,
                },
            ),
            pending: AtomicUsize::new(0),
        }
    }

    /// Schedules `value` to come due at `deadline_ns`.
    pub fn schedule(&self, deadline_ns: u64, value: T) -> TimerId {
        let mut st = self.state.lock();
        let id = st.next_id;
        st.next_id += 1;
        st.entries.insert((deadline_ns, id), value);
        drop(st);
        // relaxed: advisory count; the map under the lock is the source
        // of truth.
        self.pending.fetch_add(1, Ordering::Relaxed);
        TimerId(id)
    }

    /// Cancels a scheduled deadline; returns its value if it had not yet
    /// been popped.
    pub fn cancel(&self, id: TimerId) -> Option<T> {
        let mut st = self.state.lock();
        let key = st.entries.keys().find(|(_, eid)| *eid == id.0).copied()?;
        let value = st.entries.remove(&key);
        drop(st);
        if value.is_some() {
            // relaxed: advisory count; the map under the lock is the
            // source of truth.
            self.pending.fetch_sub(1, Ordering::Relaxed);
        }
        value
    }

    /// Removes and returns every value whose deadline is `<= now_ns`,
    /// earliest first.
    pub fn pop_due(&self, now_ns: u64) -> Vec<T> {
        let mut st = self.state.lock();
        // split_off keeps entries strictly after `now`; u64::MAX as the
        // id bound makes the cut inclusive of deadlines equal to `now`.
        let later = st.entries.split_off(&(now_ns, u64::MAX));
        let due = std::mem::replace(&mut st.entries, later);
        drop(st);
        let fired: Vec<T> = due.into_values().collect();
        if !fired.is_empty() {
            // relaxed: advisory count; the map under the lock is the
            // source of truth.
            self.pending.fetch_sub(fired.len(), Ordering::Relaxed);
            trace_event!(TimerFire, fired.len(), self.len());
        }
        fired
    }

    /// Earliest scheduled deadline, if any (for idle-sleep sizing).
    pub fn next_deadline(&self) -> Option<u64> {
        self.state
            .lock()
            .entries
            .keys()
            .next()
            .map(|(deadline, _)| *deadline)
    }

    /// Number of pending deadlines (advisory snapshot; lock-free).
    pub fn len(&self) -> usize {
        // relaxed: advisory snapshot only; no ordering with map contents.
        self.pending.load(Ordering::Relaxed)
    }

    /// `true` when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::fmt::Debug for TimerWheel<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimerWheel")
            .field("pending", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_deadline_order() {
        let w = TimerWheel::new();
        w.schedule(30, "c");
        w.schedule(10, "a");
        w.schedule(20, "b");
        assert_eq!(w.next_deadline(), Some(10));
        assert_eq!(w.pop_due(25), vec!["a", "b"]);
        assert_eq!(w.pop_due(25), Vec::<&str>::new());
        assert_eq!(w.pop_due(30), vec!["c"], "deadline is inclusive");
        assert!(w.is_empty());
    }

    #[test]
    fn equal_deadlines_fire_in_schedule_order() {
        let w = TimerWheel::new();
        w.schedule(5, 1u32);
        w.schedule(5, 2u32);
        w.schedule(5, 3u32);
        assert_eq!(w.pop_due(5), vec![1, 2, 3]);
    }

    #[test]
    fn cancel_removes_exactly_one() {
        let w = TimerWheel::new();
        let a = w.schedule(10, "a");
        let _b = w.schedule(10, "b");
        assert_eq!(w.cancel(a), Some("a"));
        assert_eq!(w.cancel(a), None, "cancel is one-shot");
        assert_eq!(w.pop_due(10), vec!["b"]);
    }

    #[test]
    fn cancel_after_pop_is_none() {
        let w = TimerWheel::new();
        let a = w.schedule(1, ());
        assert_eq!(w.pop_due(1).len(), 1);
        assert_eq!(w.cancel(a), None);
    }

    #[test]
    fn next_deadline_tracks_the_minimum() {
        let w = TimerWheel::new();
        assert_eq!(w.next_deadline(), None);
        let early = w.schedule(7, ());
        w.schedule(9, ());
        assert_eq!(w.next_deadline(), Some(7));
        w.cancel(early);
        assert_eq!(w.next_deadline(), Some(9));
    }

    #[test]
    fn now_ns_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn concurrent_schedule_and_pop_lose_nothing() {
        use std::sync::Arc;
        let w = Arc::new(TimerWheel::new());
        let producers: Vec<_> = (0..4)
            .map(|t| {
                let w = Arc::clone(&w);
                std::thread::spawn(move || {
                    for i in 0..1_000u64 {
                        w.schedule(i, t * 1_000 + i);
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut got = w.pop_due(u64::MAX);
        got.sort_unstable();
        let mut expect: Vec<u64> = (0..4)
            .flat_map(|t| (0..1_000).map(move |i| t * 1_000 + i))
            .collect();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }
}
