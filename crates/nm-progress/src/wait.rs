//! Strategy-driven waiting composed with engine polling.

use std::sync::Arc;

use nm_sync::{CompletionFlag, WaitStrategy};

use crate::ProgressEngine;

/// Waits for `flag` with `strategy`, polling `engine` during any spin
/// phase.
///
/// This is the paper's `MPI_Wait` decomposition (§3.3):
///
/// * [`WaitStrategy::Busy`] — the calling thread polls the engine in a
///   tight loop until the flag is signalled (by its own polling or by
///   someone else's).
/// * [`WaitStrategy::Passive`] — the thread blocks immediately; the
///   progression thread / scheduler hooks must keep polling and signal the
///   flag, at the cost of a context switch on wakeup.
/// * [`WaitStrategy::FixedSpin`] — poll for the window, then block; the
///   context switch is avoided iff the event lands within the window.
pub fn wait_on(flag: &CompletionFlag, strategy: WaitStrategy, engine: &Arc<ProgressEngine>) {
    let engine = Arc::clone(engine);
    flag.wait_with_poll(strategy, move || {
        engine.poll_all();
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IdlePolicy, PollOutcome, ProgressionThread};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    /// A source that signals a flag after N polls — a stand-in for a
    /// network request completing.
    fn delayed_source(flag: Arc<CompletionFlag>, after: usize) -> Arc<dyn crate::PollSource> {
        let count = AtomicUsize::new(0);
        Arc::new(move || {
            if count.fetch_add(1, Ordering::SeqCst) + 1 == after {
                flag.signal();
                PollOutcome::Progressed
            } else {
                PollOutcome::Idle
            }
        })
    }

    #[test]
    fn busy_wait_drives_its_own_completion() {
        let engine = Arc::new(ProgressEngine::new());
        let flag = Arc::new(CompletionFlag::new());
        engine.register(delayed_source(Arc::clone(&flag), 100));
        // No progression thread: only the waiter's own polling can
        // complete the request.
        wait_on(&flag, WaitStrategy::Busy, &engine);
        assert!(flag.is_set());
    }

    #[test]
    fn passive_wait_needs_a_progression_thread() {
        let engine = Arc::new(ProgressEngine::new());
        let flag = Arc::new(CompletionFlag::new());
        engine.register(delayed_source(Arc::clone(&flag), 50));
        let pt = ProgressionThread::spawn(Arc::clone(&engine), None, IdlePolicy::Yield);
        wait_on(&flag, WaitStrategy::Passive, &engine);
        assert!(flag.is_set());
        pt.stop();
    }

    #[test]
    fn fixed_spin_completes_in_spin_phase_when_fast() {
        let engine = Arc::new(ProgressEngine::new());
        let flag = Arc::new(CompletionFlag::new());
        engine.register(delayed_source(Arc::clone(&flag), 3));
        // 3 polls complete well within a generous window; no progression
        // thread exists, so finishing proves the spin phase polled.
        wait_on(
            &flag,
            WaitStrategy::FixedSpin(Duration::from_secs(5)),
            &engine,
        );
        assert!(flag.is_set());
    }

    #[test]
    fn fixed_spin_falls_back_to_blocking() {
        let engine = Arc::new(ProgressEngine::new());
        let flag = Arc::new(CompletionFlag::new());
        // Source only completes after far more polls than a 10 µs window
        // allows; the progression thread finishes the job while we block.
        engine.register(delayed_source(Arc::clone(&flag), 10_000));
        let pt = ProgressionThread::spawn(Arc::clone(&engine), None, IdlePolicy::Yield);
        wait_on(
            &flag,
            WaitStrategy::FixedSpin(Duration::from_micros(10)),
            &engine,
        );
        assert!(flag.is_set());
        pt.stop();
    }
}
