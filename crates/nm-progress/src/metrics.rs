//! Always-on health metrics for the progression engine.
//!
//! Cached handles into the global [`nm_metrics::metrics`] registry.
//! Counters yield rates on snapshot (`progress.polls` →
//! `progress.polls.per_sec`, the engine's polling frequency); gauges
//! expose instantaneous queue state (offload backlog, tasklet queue
//! depth) and the consecutive-empty-poll streak that signals an idle or
//! starved engine.

use std::sync::{Arc, OnceLock};

use nm_metrics::{Counter, Gauge};

macro_rules! global_counter {
    ($fn_name:ident, $metric:literal, $doc:literal) => {
        #[doc = $doc]
        pub fn $fn_name() -> &'static Arc<Counter> {
            static C: OnceLock<Arc<Counter>> = OnceLock::new();
            C.get_or_init(|| nm_metrics::metrics().counter($metric))
        }
    };
}

macro_rules! global_gauge {
    ($fn_name:ident, $metric:literal, $doc:literal) => {
        #[doc = $doc]
        pub fn $fn_name() -> &'static Arc<Gauge> {
            static G: OnceLock<Arc<Gauge>> = OnceLock::new();
            G.get_or_init(|| nm_metrics::metrics().gauge($metric))
        }
    };
}

global_counter!(
    polls_counter,
    "progress.polls",
    "Polling passes across all engines (rate = polls/sec)."
);
global_counter!(
    progressions_counter,
    "progress.progressions",
    "Source passes that reported progress, across all engines."
);
global_gauge!(
    empty_poll_streak,
    "progress.empty_poll_streak",
    "Current run of consecutive poll passes with zero progress."
);
global_gauge!(
    empty_poll_streak_max,
    "progress.empty_poll_streak_max",
    "High watermark of the consecutive-empty-poll streak."
);
global_gauge!(
    offload_backlog,
    "progress.offload_backlog",
    "Deferred submissions queued but not yet executed."
);
global_gauge!(
    tasklet_depth,
    "progress.tasklet_depth",
    "Tasklets queued on runner threads, awaiting execution."
);
