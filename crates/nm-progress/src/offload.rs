//! Submission offloading (§4.2 / Fig 9).
//!
//! Submitting a message to the network is CPU work (strategy evaluation,
//! header building, driver doorbell). The paper studies three places to
//! run it:
//!
//! * **Inline** — the application thread does it inside `isend` (the
//!   reference curve of Fig 9).
//! * **Idle core, no tasklet** — the submission is queued and the
//!   progression engine (running on an idle core) picks it up on its next
//!   pass: one lock-free queue push, ~400 ns.
//! * **Tasklet** — the submission is queued and a tasklet is scheduled to
//!   drain the queue; the tasklet state machine and wakeup add ~2 µs.

use std::sync::Arc;

use crossbeam_queue::SegQueue;

use crate::{PollOutcome, PollSource, Tasklet, TaskletEngine};

type Job = Box<dyn FnOnce() + Send>;

/// Where deferred submissions execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OffloadMode {
    /// Run the submission on the calling thread.
    Inline,
    /// Queue it; the progression engine drains on an idle core.
    IdleCore,
    /// Queue it and schedule a tasklet to drain.
    Tasklet,
}

impl OffloadMode {
    /// All modes, in Fig 9's order.
    pub const ALL: [OffloadMode; 3] = [
        OffloadMode::Inline,
        OffloadMode::IdleCore,
        OffloadMode::Tasklet,
    ];

    /// Label used in bench output.
    pub fn label(&self) -> &'static str {
        match self {
            OffloadMode::Inline => "reference",
            OffloadMode::IdleCore => "offload-no-tasklet",
            OffloadMode::Tasklet => "offload-tasklet",
        }
    }
}

/// Routes submission jobs according to an [`OffloadMode`].
pub struct Offloader {
    mode: OffloadMode,
    queue: Arc<SegQueue<Job>>,
    tasklet: Option<(Arc<TaskletEngine>, Arc<Tasklet>)>,
    deferred: nm_sync::stats::Counter,
}

impl Offloader {
    /// An inline (pass-through) offloader.
    pub fn inline_mode() -> Self {
        Offloader {
            mode: OffloadMode::Inline,
            queue: Arc::new(SegQueue::new()),
            tasklet: None,
            deferred: nm_sync::stats::Counter::new(),
        }
    }

    /// An idle-core offloader. Register the result as a poll source (or
    /// call [`Offloader::drain`] from a progression thread) so queued jobs
    /// actually run.
    pub fn idle_core() -> Self {
        Offloader {
            mode: OffloadMode::IdleCore,
            queue: Arc::new(SegQueue::new()),
            tasklet: None,
            deferred: nm_sync::stats::Counter::new(),
        }
    }

    /// A tasklet offloader draining through `engine`.
    pub fn tasklet(engine: Arc<TaskletEngine>) -> Self {
        let queue: Arc<SegQueue<Job>> = Arc::new(SegQueue::new());
        let q2 = Arc::clone(&queue);
        let tasklet = Tasklet::new("offload-drain", move || {
            while let Some(job) = q2.pop() {
                job();
            }
        });
        Offloader {
            mode: OffloadMode::Tasklet,
            queue,
            tasklet: Some((engine, tasklet)),
            deferred: nm_sync::stats::Counter::new(),
        }
    }

    /// Builds the offloader for `mode` (tasklet mode needs an engine).
    pub fn for_mode(mode: OffloadMode, tasklet_engine: Option<Arc<TaskletEngine>>) -> Self {
        match mode {
            OffloadMode::Inline => Self::inline_mode(),
            OffloadMode::IdleCore => Self::idle_core(),
            OffloadMode::Tasklet => Self::tasklet(
                tasklet_engine.expect("tasklet offload mode requires a TaskletEngine"),
            ),
        }
    }

    /// The configured mode.
    pub fn mode(&self) -> OffloadMode {
        self.mode
    }

    /// Number of jobs that took the deferred path.
    pub fn deferred_count(&self) -> u64 {
        self.deferred.get()
    }

    /// Submits a job according to the mode.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        match self.mode {
            OffloadMode::Inline => job(),
            OffloadMode::IdleCore => {
                self.queue.push(Box::new(job));
                self.deferred.incr();
                crate::metrics::offload_backlog().add(1);
                nm_trace::trace_event!(OffloadSubmit, self.mode as usize);
            }
            OffloadMode::Tasklet => {
                self.queue.push(Box::new(job));
                self.deferred.incr();
                crate::metrics::offload_backlog().add(1);
                nm_trace::trace_event!(OffloadSubmit, self.mode as usize);
                let (engine, tasklet) = self
                    .tasklet
                    .as_ref()
                    .expect("tasklet mode always has an engine");
                engine.schedule(tasklet);
            }
        }
    }

    /// Runs all queued jobs on the calling thread; returns how many ran.
    ///
    /// In idle-core mode this is called by the progression engine; in
    /// tasklet mode the tasklet body does it (draining here too is benign
    /// and only races the tasklet for individual jobs).
    pub fn drain(&self) -> usize {
        let mut ran = 0;
        while let Some(job) = self.queue.pop() {
            crate::metrics::offload_backlog().sub(1);
            // Matched FIFO against OffloadSubmit: the gap is the offload
            // hop (Fig 9's 400 ns idle-core / ~3.1 µs tasklet placement).
            nm_trace::trace_event!(OffloadRun, self.mode as usize);
            job();
            ran += 1;
        }
        ran
    }

    /// Pending (not yet executed) deferred jobs.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

impl PollSource for Offloader {
    fn poll(&self) -> PollOutcome {
        if self.drain() > 0 {
            PollOutcome::Progressed
        } else {
            PollOutcome::Idle
        }
    }
    fn name(&self) -> &str {
        "offloader"
    }
}

impl std::fmt::Debug for Offloader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Offloader")
            .field("mode", &self.mode)
            .field("pending", &self.pending())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn inline_runs_immediately() {
        let off = Offloader::inline_mode();
        let ran = Arc::new(AtomicUsize::new(0));
        let r2 = Arc::clone(&ran);
        off.submit(move || {
            r2.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(ran.load(Ordering::SeqCst), 1);
        assert_eq!(off.deferred_count(), 0);
    }

    #[test]
    fn idle_core_defers_until_drained() {
        let off = Offloader::idle_core();
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..5 {
            let r = Arc::clone(&ran);
            off.submit(move || {
                r.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(ran.load(Ordering::SeqCst), 0, "must not run inline");
        assert_eq!(off.pending(), 5);
        assert_eq!(off.drain(), 5);
        assert_eq!(ran.load(Ordering::SeqCst), 5);
        assert_eq!(off.deferred_count(), 5);
    }

    #[test]
    fn idle_core_drains_via_progress_engine() {
        let engine = Arc::new(crate::ProgressEngine::new());
        let off = Arc::new(Offloader::idle_core());
        engine.register(Arc::clone(&off) as _);
        let ran = Arc::new(AtomicUsize::new(0));
        let r2 = Arc::clone(&ran);
        off.submit(move || {
            r2.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(engine.poll_all(), 1);
        assert_eq!(ran.load(Ordering::SeqCst), 1);
        assert_eq!(engine.poll_all(), 0, "queue now empty");
    }

    #[test]
    fn tasklet_mode_runs_on_runner_thread() {
        let tle = Arc::new(TaskletEngine::new(1, None));
        let off = Offloader::tasklet(Arc::clone(&tle));
        let ran = Arc::new(AtomicUsize::new(0));
        let main_thread = std::thread::current().id();
        let r2 = Arc::clone(&ran);
        off.submit(move || {
            assert_ne!(std::thread::current().id(), main_thread);
            r2.fetch_add(1, Ordering::SeqCst);
        });
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while ran.load(Ordering::SeqCst) == 0 {
            assert!(std::time::Instant::now() < deadline, "job never ran");
            std::thread::yield_now();
        }
        match Arc::try_unwrap(tle) {
            Ok(e) => e.shutdown(),
            Err(_) => { /* offloader still holds it; dropped with test */ }
        }
    }

    #[test]
    fn for_mode_builds_all_variants() {
        assert_eq!(
            Offloader::for_mode(OffloadMode::Inline, None).mode(),
            OffloadMode::Inline
        );
        assert_eq!(
            Offloader::for_mode(OffloadMode::IdleCore, None).mode(),
            OffloadMode::IdleCore
        );
        let tle = Arc::new(TaskletEngine::new(1, None));
        assert_eq!(
            Offloader::for_mode(OffloadMode::Tasklet, Some(tle)).mode(),
            OffloadMode::Tasklet
        );
    }

    #[test]
    #[should_panic(expected = "requires a TaskletEngine")]
    fn tasklet_mode_without_engine_panics() {
        let _ = Offloader::for_mode(OffloadMode::Tasklet, None);
    }

    #[test]
    fn labels_match_fig9_series() {
        assert_eq!(OffloadMode::Inline.label(), "reference");
        assert_eq!(OffloadMode::IdleCore.label(), "offload-no-tasklet");
        assert_eq!(OffloadMode::Tasklet.label(), "offload-tasklet");
    }
}
