//! Dedicated progression (polling) thread.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::ProgressEngine;

/// What the progression thread does when a polling pass finds nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdlePolicy {
    /// Keep spinning: lowest reaction latency, burns a core — the paper's
    /// "dedicating one core to communication" (§3.3 measures up to 25 %
    /// compute loss on a quad-core from exactly this).
    Spin,
    /// Yield to the OS between passes: near-spin latency when the machine
    /// is otherwise idle, cooperative when it is not.
    Yield,
    /// Sleep between passes: cheapest, highest reaction latency.
    Park(Duration),
}

/// A thread that repeatedly polls a [`ProgressEngine`], optionally bound
/// to a specific core.
///
/// Binding is how Fig 8 places "polling on CPU 0/1/2/3": the application
/// thread is pinned on core 0 and the progression thread on the core under
/// study. The cross-core penalty then comes from real cache traffic (on
/// multicore hosts) or from the simulator's cost model.
pub struct ProgressionThread {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    core: Option<usize>,
}

impl ProgressionThread {
    /// Spawns a progression thread polling `engine`.
    ///
    /// `core` requests a binding (best-effort: binding errors are ignored
    /// so the stack works on restricted cpusets).
    pub fn spawn(engine: Arc<ProgressEngine>, core: Option<usize>, policy: IdlePolicy) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name(match core {
                Some(c) => format!("nm-progress-cpu{c}"),
                None => "nm-progress".into(),
            })
            .spawn(move || {
                if let Some(c) = core {
                    let _ = nm_topo::affinity::bind_current_thread(c);
                }
                while !stop2.load(Ordering::Acquire) {
                    let progressed = engine.poll_all();
                    if progressed == 0 {
                        match policy {
                            IdlePolicy::Spin => std::hint::spin_loop(),
                            IdlePolicy::Yield => std::thread::yield_now(),
                            IdlePolicy::Park(d) => {
                                std::thread::sleep(d);
                                nm_trace::trace_event!(ProgressionWake);
                            }
                        }
                    }
                }
            })
            .expect("failed to spawn progression thread");
        ProgressionThread {
            stop,
            handle: Some(handle),
            core,
        }
    }

    /// The core this thread was asked to run on.
    pub fn core(&self) -> Option<usize> {
        self.core
    }

    /// Stops and joins the thread.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ProgressionThread {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

impl std::fmt::Debug for ProgressionThread {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgressionThread")
            .field("core", &self.core)
            .field("running", &self.handle.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PollOutcome;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn polls_until_stopped() {
        let engine = Arc::new(ProgressEngine::new());
        let polls = Arc::new(AtomicUsize::new(0));
        let p2 = Arc::clone(&polls);
        engine.register(Arc::new(move || {
            p2.fetch_add(1, Ordering::Relaxed);
            PollOutcome::Idle
        }));
        let pt = ProgressionThread::spawn(engine, None, IdlePolicy::Yield);
        std::thread::sleep(Duration::from_millis(30));
        pt.stop();
        let n = polls.load(Ordering::Relaxed);
        assert!(n > 0, "progression thread never polled");
        // After stop, no further polls.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(polls.load(Ordering::Relaxed), n);
    }

    #[test]
    fn park_policy_still_makes_progress() {
        let engine = Arc::new(ProgressEngine::new());
        let polls = Arc::new(AtomicUsize::new(0));
        let p2 = Arc::clone(&polls);
        engine.register(Arc::new(move || {
            p2.fetch_add(1, Ordering::Relaxed);
            PollOutcome::Idle
        }));
        let pt = ProgressionThread::spawn(engine, None, IdlePolicy::Park(Duration::from_millis(1)));
        std::thread::sleep(Duration::from_millis(50));
        pt.stop();
        assert!(polls.load(Ordering::Relaxed) >= 5);
    }

    #[test]
    fn drop_stops_the_thread() {
        let engine = Arc::new(ProgressEngine::new());
        {
            let _pt = ProgressionThread::spawn(engine, None, IdlePolicy::Yield);
        } // drop must join without hanging
    }

    #[test]
    fn binding_request_is_best_effort() {
        let engine = Arc::new(ProgressEngine::new());
        // Core 0 exists everywhere this test runs; binding may still fail
        // in a restricted cpuset and must not crash.
        let pt = ProgressionThread::spawn(engine, Some(0), IdlePolicy::Yield);
        assert_eq!(pt.core(), Some(0));
        pt.stop();
    }
}
