//! [`WakerTable`] — request-id-keyed waker registry for async completion.
//!
//! The async facade in `nm-mpi` hands out futures instead of blocking
//! threads. When such a future polls `Pending`, it parks its
//! [`std::task::Waker`] here under the request id; when the progress
//! engine delivers the request's completion it calls [`WakerTable::wake`]
//! and the executor re-polls exactly the right task. This is the
//! "millions of outstanding operations on a few cores" shape: one table
//! entry per in-flight async op, zero blocked threads.
//!
//! # Race protocol
//!
//! A completion can land *between* a future's completion check and its
//! waker store. The table inherits [`WakerCell`]'s one-shot protocol and
//! layers the register-then-recheck rule on top:
//!
//! 1. Completion delivery publishes the terminal state (the request's
//!    `CompletionFlag` is signalled) **before** calling `wake`.
//! 2. A future checks completion, then [`WakerTable::register`]s, then
//!    **re-checks** completion before returning `Pending`.
//!
//! If delivery ran before the register, either `register` returns
//! `false` (the cell was already woken) or the re-check observes the
//! signalled flag — both ways the future completes without waiting on a
//! wake-up that already happened.
//!
//! # Locking
//!
//! Entries are sharded by request id over spinlocks classed
//! `progress.wakers` (see `docs/CONCURRENCY.md`). Delivery runs with
//! core's API lock held, so the shard critical sections are kept O(1)
//! and the foreign waker — arbitrary executor code — is always invoked
//! *outside* the shard lock.

use std::collections::HashMap;
use std::sync::Arc;
use std::task::Waker;

use nm_sync::{SpinLock, WakerCell};
use nm_trace::trace_event;

/// Shard count; ids are distributed by low bits. Power of two.
const SHARDS: usize = 8;

/// One table entry: the waiting future's cell plus the observability
/// span of the awaited request (0 = none), recorded at registration so
/// the wake-up can be attributed to the message's timeline.
#[derive(Default)]
struct Slot {
    cell: Arc<WakerCell>,
    span: u64,
}

/// A sharded map from request id to the [`WakerCell`] of the future
/// awaiting that request. See the module docs for the race protocol.
pub struct WakerTable {
    shards: Vec<SpinLock<HashMap<u64, Slot>>>,
}

impl WakerTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        let mut shards = Vec::with_capacity(SHARDS);
        for _ in 0..SHARDS {
            let waker_shard = SpinLock::with_class("progress.wakers", HashMap::new());
            shards.push(waker_shard);
        }
        WakerTable { shards }
    }

    fn shard_for(&self, id: u64) -> &SpinLock<HashMap<u64, Slot>> {
        &self.shards[(id as usize) & (SHARDS - 1)]
    }

    /// Registers `waker` for request `id`, replacing any previous
    /// registration for the same id.
    ///
    /// Returns `false` if the request's completion was already delivered
    /// ([`WakerTable::wake`] ran first): the waker is not stored and the
    /// caller must treat the operation as complete instead of returning
    /// `Pending`.
    pub fn register(&self, id: u64, waker: &Waker) -> bool {
        self.register_spanned(id, 0, waker)
    }

    /// [`WakerTable::register`] carrying the request's observability
    /// span, so the eventual [`WakerTable::wake`] emits a `SpanWake`
    /// on the message's timeline. Same shard lock, same single
    /// acquisition — the span rides in the existing entry.
    pub fn register_spanned(&self, id: u64, span: u64, waker: &Waker) -> bool {
        let cell = {
            let waker_shard = self.shard_for(id);
            let mut map = waker_shard.lock();
            let slot = map.entry(id).or_default();
            slot.span = span;
            Arc::clone(&slot.cell)
        };
        // The actual store runs outside the shard lock: `Waker::clone`
        // is foreign (executor) code.
        let armed = cell.register(waker);
        if armed {
            trace_event!(WakerRegister, id);
        } else {
            // Lost the race with delivery; drop the dead entry so the
            // table does not leak woken cells.
            self.unregister(id);
        }
        armed
    }

    /// Wakes the waker registered for `id`, if any, and removes the
    /// entry. Called by completion delivery *after* the request's
    /// terminal state is published.
    ///
    /// Returns `true` if an entry existed. `false` means the future has
    /// not registered yet; its mandatory post-registration re-check of
    /// the completion state covers that window.
    pub fn wake(&self, id: u64) -> bool {
        let slot = {
            let waker_shard = self.shard_for(id);
            let mut map = waker_shard.lock();
            map.remove(&id)
        };
        let found = slot.is_some();
        if let Some(slot) = slot {
            if slot.span != 0 {
                trace_event!(SpanWake, slot.span);
            }
            // Outside the shard lock: wakes run arbitrary executor code.
            slot.cell.wake();
        }
        trace_event!(WakerWake, id, u64::from(found));
        found
    }

    /// Removes any registration for `id` without waking it. Futures call
    /// this on completion and on drop so abandoned waits do not leak.
    pub fn unregister(&self, id: u64) {
        let waker_shard = self.shard_for(id);
        let mut map = waker_shard.lock();
        map.remove(&id);
    }

    /// Number of currently registered waiters (sums all shards).
    pub fn len(&self) -> usize {
        let mut total = 0;
        for waker_shard in &self.shards {
            total += waker_shard.lock().len();
        }
        total
    }

    /// `true` when no waiter is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for WakerTable {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for WakerTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WakerTable")
            .field("registered", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::task::Wake;

    struct CountingWaker(AtomicUsize);

    impl Wake for CountingWaker {
        fn wake(self: Arc<Self>) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn counting_waker() -> (Arc<CountingWaker>, Waker) {
        let inner = Arc::new(CountingWaker(AtomicUsize::new(0)));
        (Arc::clone(&inner), Waker::from(Arc::clone(&inner)))
    }

    #[test]
    fn wake_reaches_the_registered_id_only() {
        let table = WakerTable::new();
        let (count7, waker7) = counting_waker();
        let (count9, waker9) = counting_waker();
        assert!(table.register(7, &waker7));
        assert!(table.register(9, &waker9));
        assert_eq!(table.len(), 2);
        assert!(table.wake(7));
        assert_eq!(count7.0.load(Ordering::SeqCst), 1);
        assert_eq!(count9.0.load(Ordering::SeqCst), 0);
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn wake_without_registration_reports_missing() {
        let table = WakerTable::new();
        assert!(!table.wake(42));
        // A later registration for the same id starts a fresh cell (the
        // woken one was never inserted), so the future must rely on its
        // completion re-check, not on this table, for that window.
        let (_count, waker) = counting_waker();
        assert!(table.register(42, &waker));
        assert!(table.wake(42));
    }

    #[test]
    fn unregister_prevents_the_wake() {
        let table = WakerTable::new();
        let (count, waker) = counting_waker();
        assert!(table.register(3, &waker));
        table.unregister(3);
        assert!(table.is_empty());
        assert!(!table.wake(3));
        assert_eq!(count.0.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn register_after_wake_on_live_cell_is_refused() {
        // Reproduce the delivery-wins interleaving at the cell level:
        // the cell is woken between the map insert and the store.
        let table = WakerTable::new();
        let (count, waker) = counting_waker();
        assert!(table.register(5, &waker));
        assert!(table.wake(5));
        assert_eq!(count.0.load(Ordering::SeqCst), 1);
        // Entry is gone; a new register works independently.
        let (count2, waker2) = counting_waker();
        assert!(table.register(5, &waker2));
        table.unregister(5);
        assert_eq!(count2.0.load(Ordering::SeqCst), 0);
    }
}
