//! Linux-softirq-style tasklets.
//!
//! The paper's earlier PIOMan "relied extensively on tasklets to offload
//! communication processing" and Fig 9 shows why that was reconsidered:
//! the tasklet machinery — per-CPU pending lists, a scheduling state
//! machine that guarantees a tasklet never runs on two CPUs at once, and
//! the cross-CPU locking to hand tasklets around — costs ~2 µs per
//! deferred submission, versus ~400 ns for letting an idle core pick the
//! work up directly.
//!
//! We reproduce the Linux semantics (Wilcox, *I'll Do It Later*):
//!
//! * A scheduled tasklet runs **exactly once** per schedule, **never
//!   concurrently with itself**.
//! * Scheduling an already-scheduled tasklet is a no-op.
//! * Scheduling a *running* tasklet makes it run again after it finishes.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam_queue::SegQueue;
use parking_lot::{Condvar, Mutex};

const IDLE: u32 = 0;
const SCHEDULED: u32 = 1;
const RUNNING: u32 = 2;
const RERUN: u32 = 3;

/// A deferred work item with softirq-style serialization guarantees.
pub struct Tasklet {
    name: String,
    state: AtomicU32,
    func: Box<dyn Fn() + Send + Sync>,
    runs: nm_sync::stats::Counter,
}

impl Tasklet {
    /// Creates a tasklet around `func`.
    pub fn new(name: impl Into<String>, func: impl Fn() + Send + Sync + 'static) -> Arc<Self> {
        Arc::new(Tasklet {
            name: name.into(),
            state: AtomicU32::new(IDLE),
            func: Box::new(func),
            runs: nm_sync::stats::Counter::new(),
        })
    }

    /// Diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of completed executions.
    pub fn runs(&self) -> u64 {
        self.runs.get()
    }

    /// `true` if currently queued or running.
    pub fn is_pending(&self) -> bool {
        self.state.load(Ordering::Acquire) != IDLE
    }
}

/// The tasklet execution engine: runner threads draining a pending queue.
///
/// The scheduling path deliberately mirrors the kernel's: state CAS, queue
/// push under the queue's own synchronization, then a wakeup of the runner
/// — three synchronization points before the work even starts, which is
/// where the measured overhead comes from.
pub struct TaskletEngine {
    shared: Arc<Shared>,
    runners: Vec<JoinHandle<()>>,
}

struct Shared {
    pending: SegQueue<Arc<Tasklet>>,
    shutdown: AtomicBool,
    lock: Mutex<()>,
    cv: Condvar,
}

impl TaskletEngine {
    /// Starts `runners` runner threads, optionally bound to `cores`
    /// (length must match when provided).
    pub fn new(runners: usize, cores: Option<Vec<usize>>) -> Self {
        assert!(runners > 0, "at least one tasklet runner required");
        if let Some(c) = &cores {
            assert_eq!(c.len(), runners, "cores length must equal runner count");
        }
        let shared = Arc::new(Shared {
            pending: SegQueue::new(),
            shutdown: AtomicBool::new(false),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        });
        let handles = (0..runners)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let core = cores.as_ref().map(|c| c[i]);
                std::thread::Builder::new()
                    .name(format!("nm-tasklet-{i}"))
                    .spawn(move || runner_loop(shared, core))
                    .expect("failed to spawn tasklet runner")
            })
            .collect();
        TaskletEngine {
            shared,
            runners: handles,
        }
    }

    /// Schedules a tasklet for execution.
    ///
    /// No-op if it is already scheduled; if it is currently running it
    /// will be re-run once after the current execution finishes.
    pub fn schedule(&self, tasklet: &Arc<Tasklet>) {
        // relaxed: initial guess for the state CAS loop; the AcqRel CAS
        // below is the synchronizing operation.
        let mut cur = tasklet.state.load(Ordering::Relaxed);
        loop {
            let (next, enqueue) = match cur {
                IDLE => (SCHEDULED, true),
                SCHEDULED | RERUN => return, // already queued / re-queued
                RUNNING => (RERUN, false),
                _ => unreachable!("invalid tasklet state {cur}"),
            };
            match tasklet.state.compare_exchange_weak(
                cur,
                next,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    if enqueue {
                        nm_trace::trace_event!(TaskletSched, Arc::as_ptr(tasklet) as usize);
                        self.shared.pending.push(Arc::clone(tasklet));
                        crate::metrics::tasklet_depth().add(1);
                        let _g = self.shared.lock.lock();
                        self.shared.cv.notify_one();
                    }
                    return;
                }
                Err(actual) => cur = actual,
            }
        }
    }

    /// Stops and joins all runners. Pending tasklets are dropped.
    pub fn shutdown(self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _g = self.shared.lock.lock();
            self.shared.cv.notify_all();
        }
        for r in self.runners {
            let _ = r.join();
        }
    }
}

fn runner_loop(shared: Arc<Shared>, core: Option<usize>) {
    if let Some(c) = core {
        let _ = nm_topo::affinity::bind_current_thread(c);
    }
    loop {
        if let Some(tasklet) = shared.pending.pop() {
            crate::metrics::tasklet_depth().sub(1);
            run_one(&shared, tasklet);
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let mut g = shared.lock.lock();
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if shared.pending.is_empty() {
            shared
                .cv
                .wait_for(&mut g, std::time::Duration::from_millis(1));
        }
    }
}

fn run_one(shared: &Arc<Shared>, tasklet: Arc<Tasklet>) {
    // SCHEDULED -> RUNNING. The queue holds at most one reference per
    // schedule, so no other runner can execute this tasklet concurrently.
    let prev = tasklet.state.swap(RUNNING, Ordering::AcqRel);
    debug_assert_eq!(prev, SCHEDULED, "tasklet dequeued in state {prev}");
    // The TaskletSched→TaskletRun gap is the SCHED→RUN hand-off cost.
    nm_trace::trace_event!(TaskletRun, Arc::as_ptr(&tasklet) as usize);
    (tasklet.func)();
    tasklet.runs.incr();
    // RUNNING -> IDLE, unless someone requested a re-run meanwhile.
    match tasklet
        .state
        .compare_exchange(RUNNING, IDLE, Ordering::AcqRel, Ordering::Acquire)
    {
        Ok(_) => {}
        Err(state) => {
            debug_assert_eq!(state, RERUN);
            tasklet.state.store(SCHEDULED, Ordering::Release);
            shared.pending.push(tasklet);
            crate::metrics::tasklet_depth().add(1);
            let _g = shared.lock.lock();
            shared.cv.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    fn wait_until(cond: impl Fn() -> bool, ms: u64) -> bool {
        let deadline = std::time::Instant::now() + Duration::from_millis(ms);
        while std::time::Instant::now() < deadline {
            if cond() {
                return true;
            }
            std::thread::yield_now();
        }
        cond()
    }

    #[test]
    fn scheduled_tasklet_runs_once() {
        let engine = TaskletEngine::new(1, None);
        let count = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&count);
        let t = Tasklet::new("t", move || {
            c2.fetch_add(1, Ordering::SeqCst);
        });
        engine.schedule(&t);
        assert!(wait_until(|| count.load(Ordering::SeqCst) == 1, 1000));
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(count.load(Ordering::SeqCst), 1, "ran more than once");
        assert_eq!(t.runs(), 1);
        engine.shutdown();
    }

    #[test]
    fn double_schedule_coalesces() {
        let engine = TaskletEngine::new(1, None);
        let gate = Arc::new(nm_sync::Semaphore::new(0));
        let count = Arc::new(AtomicUsize::new(0));
        let (g2, c2) = (Arc::clone(&gate), Arc::clone(&count));
        // A first tasklet occupies the single runner so the second stays
        // queued while we schedule it again.
        let blocker = Tasklet::new("blocker", move || g2.acquire());
        let t = Tasklet::new("t", move || {
            c2.fetch_add(1, Ordering::SeqCst);
        });
        engine.schedule(&blocker);
        engine.schedule(&t);
        engine.schedule(&t); // coalesced
        engine.schedule(&t); // coalesced
        gate.release();
        assert!(wait_until(|| count.load(Ordering::SeqCst) == 1, 1000));
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(count.load(Ordering::SeqCst), 1);
        engine.shutdown();
    }

    #[test]
    fn schedule_while_running_reruns() {
        let engine = TaskletEngine::new(1, None);
        let entered = Arc::new(nm_sync::Semaphore::new(0));
        let release = Arc::new(nm_sync::Semaphore::new(0));
        let count = Arc::new(AtomicUsize::new(0));
        let (e2, r2, c2) = (
            Arc::clone(&entered),
            Arc::clone(&release),
            Arc::clone(&count),
        );
        let t = Tasklet::new("t", move || {
            let n = c2.fetch_add(1, Ordering::SeqCst);
            if n == 0 {
                e2.release(); // signal: first run started
                r2.acquire(); // hold the runner inside the tasklet
            }
        });
        engine.schedule(&t);
        entered.acquire();
        engine.schedule(&t); // while running: must re-run afterwards
        release.release();
        assert!(wait_until(|| count.load(Ordering::SeqCst) == 2, 1000));
        engine.shutdown();
    }

    #[test]
    fn never_concurrent_with_itself() {
        let engine = TaskletEngine::new(4, None);
        let inside = Arc::new(AtomicUsize::new(0));
        let max_inside = Arc::new(AtomicUsize::new(0));
        let (i2, m2) = (Arc::clone(&inside), Arc::clone(&max_inside));
        let t = Tasklet::new("t", move || {
            let now = i2.fetch_add(1, Ordering::SeqCst) + 1;
            m2.fetch_max(now, Ordering::SeqCst);
            std::thread::yield_now();
            i2.fetch_sub(1, Ordering::SeqCst);
        });
        for _ in 0..200 {
            engine.schedule(&t);
            std::thread::yield_now();
        }
        assert!(wait_until(|| !t.is_pending(), 2000));
        assert_eq!(
            max_inside.load(Ordering::SeqCst),
            1,
            "tasklet ran concurrently"
        );
        engine.shutdown();
    }

    #[test]
    fn distinct_tasklets_run_in_parallel_engine() {
        let engine = TaskletEngine::new(2, None);
        let count = Arc::new(AtomicUsize::new(0));
        let tasklets: Vec<_> = (0..10)
            .map(|i| {
                let c = Arc::clone(&count);
                Tasklet::new(format!("t{i}"), move || {
                    c.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for t in &tasklets {
            engine.schedule(t);
        }
        assert!(wait_until(|| count.load(Ordering::SeqCst) == 10, 1000));
        engine.shutdown();
    }

    #[test]
    #[should_panic(expected = "cores length")]
    fn mismatched_cores_rejected() {
        let _ = TaskletEngine::new(2, Some(vec![0]));
    }
}
