//! Model-checked test of the progression-thread completion handoff.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"`:
//!
//! ```sh
//! RUSTFLAGS="--cfg loom" cargo test -p nm-progress --test loom
//! ```
//!
//! The progression engine's core protocol (see `src/engine.rs`) is: a
//! dedicated thread polls the fabric, writes a request's result, marks it
//! complete via `CompletionFlag::signal`, and keeps looping until a stop
//! flag is raised; meanwhile an application thread blocks on the request's
//! flag and reads the result after waking. This test replays exactly that
//! protocol on the model-checked primitives, so the handoff's
//! happens-before edge (release store in `signal`, acquire load in the
//! wait) and the shutdown sequencing are both explored across schedules.

#![cfg(loom)]

use std::sync::Arc;

use nm_sync::sync_shim::atomic::{AtomicBool, Ordering};
use nm_sync::sync_shim::{cell::UnsafeCell, thread};
use nm_sync::{CompletionFlag, WaitStrategy};

/// A pending receive: the progression thread fills `payload`, then
/// signals `done`.
struct Request {
    done: CompletionFlag,
    payload: UnsafeCell<u64>,
}

// SAFETY: `payload` is written only by the progression thread before
// `done.signal()` and read only after the waiter observes the flag; the
// model checks that this protocol really orders the accesses.
unsafe impl Sync for Request {}

struct EngineState {
    request: Request,
    stop: AtomicBool,
}

fn progression_thread(state: &EngineState) {
    // Poll loop: complete outstanding work, then keep polling until the
    // owner asks us to stop — mirroring `ProgressionEngine::run`.
    let mut completed = false;
    loop {
        if !completed {
            state.request.payload.with_mut(|p| {
                // SAFETY: only the progression thread writes, and only
                // before signalling completion.
                unsafe { *p = 0xfeed }
            });
            state.request.done.signal();
            completed = true;
        }
        if state.stop.load(Ordering::Acquire) {
            break;
        }
        thread::yield_now();
    }
}

#[test]
fn progression_thread_completion_handoff() {
    loom::model(|| {
        let state = Arc::new(EngineState {
            request: Request {
                done: CompletionFlag::new(),
                payload: UnsafeCell::new(0),
            },
            stop: AtomicBool::new(false),
        });
        let engine = Arc::clone(&state);
        let h = thread::spawn(move || progression_thread(&engine));

        // Application thread: block on the request, then read the result.
        state.request.done.wait(WaitStrategy::Passive);
        state.request.payload.with(|p| {
            // SAFETY: the completed flag's acquire edge orders this read
            // after the progression thread's write.
            assert_eq!(unsafe { *p }, 0xfeed);
        });

        // Shutdown: release-store so the progression thread's final reads
        // happen-before the join.
        state.stop.store(true, Ordering::Release);
        h.join().unwrap();
    });
}

#[test]
fn progression_thread_stop_before_wait_still_completes() {
    loom::model(|| {
        let state = Arc::new(EngineState {
            request: Request {
                done: CompletionFlag::new(),
                payload: UnsafeCell::new(0),
            },
            stop: AtomicBool::new(false),
        });
        let engine = Arc::clone(&state);
        let h = thread::spawn(move || progression_thread(&engine));

        // Raise stop immediately; the engine must still have completed
        // the in-flight request before exiting (completion precedes the
        // stop check in the loop).
        state.stop.store(true, Ordering::Release);
        h.join().unwrap();
        assert!(state.request.done.is_set());
        state.request.payload.with(|p| {
            // SAFETY: join provides the happens-before edge here.
            assert_eq!(unsafe { *p }, 0xfeed);
        });
    });
}
