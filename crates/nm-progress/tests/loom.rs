//! Model-checked test of the progression-thread completion handoff.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"`:
//!
//! ```sh
//! RUSTFLAGS="--cfg loom" cargo test -p nm-progress --test loom
//! ```
//!
//! The progression engine's core protocol (see `src/engine.rs`) is: a
//! dedicated thread polls the fabric, writes a request's result, marks it
//! complete via `CompletionFlag::signal`, and keeps looping until a stop
//! flag is raised; meanwhile an application thread blocks on the request's
//! flag and reads the result after waking. This test replays exactly that
//! protocol on the model-checked primitives, so the handoff's
//! happens-before edge (release store in `signal`, acquire load in the
//! wait) and the shutdown sequencing are both explored across schedules.

#![cfg(loom)]

use std::sync::Arc;

use nm_sync::sync_shim::atomic::{AtomicBool, Ordering};
use nm_sync::sync_shim::{cell::UnsafeCell, thread, Mutex};
use nm_sync::{CompletionFlag, WaitStrategy};

/// A pending receive: the progression thread fills `payload`, then
/// signals `done`.
struct Request {
    done: CompletionFlag,
    payload: UnsafeCell<u64>,
}

// SAFETY: `payload` is written only by the progression thread before
// `done.signal()` and read only after the waiter observes the flag; the
// model checks that this protocol really orders the accesses.
unsafe impl Sync for Request {}

struct EngineState {
    request: Request,
    stop: AtomicBool,
}

fn progression_thread(state: &EngineState) {
    // Poll loop: complete outstanding work, then keep polling until the
    // owner asks us to stop — mirroring `ProgressionEngine::run`.
    let mut completed = false;
    loop {
        if !completed {
            state.request.payload.with_mut(|p| {
                // SAFETY: only the progression thread writes, and only
                // before signalling completion.
                unsafe { *p = 0xfeed }
            });
            state.request.done.signal();
            completed = true;
        }
        if state.stop.load(Ordering::Acquire) {
            break;
        }
        thread::yield_now();
    }
}

#[test]
fn progression_thread_completion_handoff() {
    loom::model(|| {
        let state = Arc::new(EngineState {
            request: Request {
                done: CompletionFlag::new(),
                payload: UnsafeCell::new(0),
            },
            stop: AtomicBool::new(false),
        });
        let engine = Arc::clone(&state);
        let h = thread::spawn(move || progression_thread(&engine));

        // Application thread: block on the request, then read the result.
        state.request.done.wait(WaitStrategy::Passive);
        state.request.payload.with(|p| {
            // SAFETY: the completed flag's acquire edge orders this read
            // after the progression thread's write.
            assert_eq!(unsafe { *p }, 0xfeed);
        });

        // Shutdown: release-store so the progression thread's final reads
        // happen-before the join.
        state.stop.store(true, Ordering::Release);
        h.join().unwrap();
    });
}

/// One transfer-layer lane of the model: an xfer queue and the racy
/// liveness hint, exactly the pair `comm.rs` keeps per (rail, VCI).
struct Lane {
    queue: Mutex<Vec<u32>>,
    dead: AtomicBool,
}

impl Lane {
    fn new() -> Self {
        Lane {
            queue: Mutex::new(Vec::new()),
            dead: AtomicBool::new(false),
        }
    }
}

/// `migrate_stranded`: drain the dead lane's queue, then re-push onto a
/// lane that is live *in a snapshot taken after the drain* — the order
/// the real failover relies on.
fn migrate_stranded(lanes: &[Lane; 2], from: usize) {
    let stranded: Vec<u32> = lanes[from].queue.lock().drain(..).collect();
    if stranded.is_empty() {
        return;
    }
    let live = (0..2)
        .find(|&l| !lanes[l].dead.load(Ordering::Relaxed))
        .expect("model keeps lane 1 alive");
    lanes[live].queue.lock().extend(stranded);
}

/// Model-checked replay of the VCI lane-selection vs. retransmit-failover
/// race in the core transfer layer.
///
/// The submit path (`pick_idle_lane`) reads the per-lane `dead` hint with
/// relaxed ordering and *then* pushes onto the chosen lane's xfer queue,
/// so a failover (`kill_lane` → `migrate_stranded`) can drain the lane
/// between the check and the push and leave the new item stranded on a
/// dead lane. The real code does not close that window with a lock — it
/// guarantees instead that every progression pass re-runs `flush_xfer`,
/// which migrates dead lanes' queues again. The model explores every
/// interleaving of submitter and killer and asserts the recovery
/// invariant: after one such pass, nothing is lost and nothing sits on a
/// dead lane.
#[test]
fn vci_failover_rescues_items_striped_onto_a_dying_lane() {
    loom::model(|| {
        let lanes = Arc::new([Lane::new(), Lane::new()]);

        // Submitter: pick_idle_lane's racy hint read, then the push.
        let submit = {
            let lanes = Arc::clone(&lanes);
            thread::spawn(move || {
                let lane = if !lanes[0].dead.load(Ordering::Relaxed) {
                    0
                } else {
                    1
                };
                lanes[lane].queue.lock().push(0xdead_beef);
            })
        };

        // Killer: the kill_lane transition — mark dead, then migrate.
        let kill = {
            let lanes = Arc::clone(&lanes);
            thread::spawn(move || {
                lanes[0].dead.store(true, Ordering::Relaxed);
                migrate_stranded(&lanes, 0);
            })
        };

        submit.join().unwrap();
        kill.join().unwrap();

        // One progression pass: flush_xfer migrates every dead lane.
        for lane in 0..2 {
            if lanes[lane].dead.load(Ordering::Relaxed) {
                migrate_stranded(&lanes, lane);
            }
        }

        // Nothing lost, and no item left on a dead lane.
        let on_dead = lanes[0].queue.lock().len();
        let on_live = lanes[1].queue.lock().len();
        assert_eq!(on_dead, 0, "item stranded on the dead lane");
        assert_eq!(on_live, 1, "item lost in migration");
    });
}

#[test]
fn progression_thread_stop_before_wait_still_completes() {
    loom::model(|| {
        let state = Arc::new(EngineState {
            request: Request {
                done: CompletionFlag::new(),
                payload: UnsafeCell::new(0),
            },
            stop: AtomicBool::new(false),
        });
        let engine = Arc::clone(&state);
        let h = thread::spawn(move || progression_thread(&engine));

        // Raise stop immediately; the engine must still have completed
        // the in-flight request before exiting (completion precedes the
        // stop check in the loop).
        state.stop.store(true, Ordering::Release);
        h.join().unwrap();
        assert!(state.request.done.is_set());
        state.request.payload.with(|p| {
            // SAFETY: join provides the happens-before edge here.
            assert_eq!(unsafe { *p }, 0xfeed);
        });
    });
}
