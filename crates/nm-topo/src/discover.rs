//! Host topology discovery from `/sys/devices/system/cpu` (Linux).

use std::fs;
use std::path::Path;

use crate::{CoreInfo, PollPenalties, Topology};

/// Attempts to build the host topology from sysfs; `None` when sysfs is
/// unavailable or malformed (the caller falls back to a uniform topology).
pub(crate) fn discover() -> Option<Topology> {
    discover_from(Path::new("/sys/devices/system/cpu"))
}

/// Sysfs-driven discovery rooted at `base` (separated out for tests).
pub(crate) fn discover_from(base: &Path) -> Option<Topology> {
    let online = fs::read_to_string(base.join("online")).ok()?;
    let cpus = parse_cpu_list(online.trim())?;
    if cpus.is_empty() || cpus[0] != 0 {
        return None;
    }
    // Only dense 0..n layouts are representable; hotplugged holes fall back.
    for (i, &c) in cpus.iter().enumerate() {
        if c != i {
            return None;
        }
    }

    let mut cores = Vec::with_capacity(cpus.len());
    for &cpu in &cpus {
        let cpu_dir = base.join(format!("cpu{cpu}"));
        let package = read_usize(&cpu_dir.join("topology/physical_package_id")).unwrap_or(0);
        // The shared-cache group is the set of CPUs sharing the largest
        // non-L1 cache; identify it by the first CPU of that set.
        let cache_group = shared_cache_leader(&cpu_dir).unwrap_or(cpu);
        cores.push(CoreInfo {
            id: cpu,
            package,
            cache_group,
        });
    }
    // Normalize cache-group leaders to dense group ids.
    let mut leaders: Vec<usize> = cores.iter().map(|c| c.cache_group).collect();
    leaders.sort_unstable();
    leaders.dedup();
    for c in &mut cores {
        c.cache_group = leaders.binary_search(&c.cache_group).unwrap();
    }

    Some(Topology::from_cores(
        "discovered",
        cores,
        PollPenalties::XEON_X5460,
    ))
}

/// Finds the lowest CPU id sharing this CPU's largest (highest-level,
/// non-instruction) cache.
fn shared_cache_leader(cpu_dir: &Path) -> Option<usize> {
    let cache_dir = cpu_dir.join("cache");
    let mut best: Option<(usize, usize)> = None; // (level, leader)
    let entries = fs::read_dir(&cache_dir).ok()?;
    for e in entries.flatten() {
        let name = e.file_name();
        let name = name.to_string_lossy();
        if !name.starts_with("index") {
            continue;
        }
        let idx_dir = e.path();
        let level = read_usize(&idx_dir.join("level"))?;
        if level < 2 {
            continue; // L1 is private; only shared levels matter.
        }
        let list = fs::read_to_string(idx_dir.join("shared_cpu_list")).ok()?;
        let members = parse_cpu_list(list.trim())?;
        let leader = *members.first()?;
        match best {
            Some((l, _)) if l >= level => {}
            _ => best = Some((level, leader)),
        }
    }
    best.map(|(_, leader)| leader)
}

fn read_usize(path: &Path) -> Option<usize> {
    fs::read_to_string(path).ok()?.trim().parse().ok()
}

/// Parses a kernel CPU list like `0-3,8,10-11` into sorted CPU ids.
pub(crate) fn parse_cpu_list(s: &str) -> Option<Vec<usize>> {
    let mut out = Vec::new();
    if s.is_empty() {
        return Some(out);
    }
    for part in s.split(',') {
        let part = part.trim();
        if let Some((lo, hi)) = part.split_once('-') {
            let (lo, hi): (usize, usize) = (lo.parse().ok()?, hi.parse().ok()?);
            if lo > hi {
                return None;
            }
            out.extend(lo..=hi);
        } else {
            out.push(part.parse().ok()?);
        }
    }
    out.sort_unstable();
    out.dedup();
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_lists() {
        assert_eq!(parse_cpu_list("0-3").unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(parse_cpu_list("0").unwrap(), vec![0]);
        assert_eq!(parse_cpu_list("0,2-3,5").unwrap(), vec![0, 2, 3, 5]);
        assert_eq!(parse_cpu_list("").unwrap(), Vec::<usize>::new());
        assert!(parse_cpu_list("3-1").is_none());
        assert!(parse_cpu_list("x").is_none());
    }

    fn write(path: &Path, contents: &str) {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(path, contents).unwrap();
    }

    /// Builds a fake sysfs tree mirroring the paper's quad-core X5460:
    /// cores {0,1} and {2,3} each share an L2.
    fn fake_x5460(root: &Path) {
        write(&root.join("online"), "0-3\n");
        for cpu in 0..4 {
            let d = root.join(format!("cpu{cpu}"));
            write(&d.join("topology/physical_package_id"), "0\n");
            // L1 private.
            write(&d.join("cache/index0/level"), "1\n");
            write(&d.join("cache/index0/shared_cpu_list"), &format!("{cpu}\n"));
            // L2 shared per pair.
            let pair = if cpu < 2 { "0-1" } else { "2-3" };
            write(&d.join("cache/index2/level"), "2\n");
            write(
                &d.join("cache/index2/shared_cpu_list"),
                &format!("{pair}\n"),
            );
        }
    }

    #[test]
    fn discovers_shared_cache_pairs() {
        let dir = std::env::temp_dir().join(format!("nm-topo-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fake_x5460(&dir);
        let t = discover_from(&dir).expect("discovery should succeed");
        assert_eq!(t.num_cores(), 4);
        assert_eq!(t.distance(0, 1), crate::Distance::SharedCache);
        assert_eq!(t.distance(0, 2), crate::Distance::SamePackage);
        assert_eq!(t.distance(2, 3), crate::Distance::SharedCache);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_sysfs_returns_none() {
        assert!(discover_from(Path::new("/nonexistent-sysfs-root")).is_none());
    }
}
