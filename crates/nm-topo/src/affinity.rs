//! Thread-to-core binding without libc.
//!
//! Fig 8 requires "a pingpong test that binds the main thread to a CPU"
//! and a progression thread bound elsewhere. We issue the Linux
//! `sched_setaffinity`/`sched_getaffinity` syscalls directly (x86-64 and
//! aarch64); other platforms get [`AffinityError::Unsupported`] and the
//! benches fall back to the deterministic simulator for this figure.

use std::fmt;

/// Why a binding request could not be honoured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AffinityError {
    /// The platform has no supported affinity syscall.
    Unsupported,
    /// The kernel rejected the request (errno value).
    Kernel(i32),
    /// The core id is outside the mask the process may use.
    InvalidCore(usize),
}

impl fmt::Display for AffinityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AffinityError::Unsupported => write!(f, "thread affinity unsupported on this platform"),
            AffinityError::Kernel(errno) => write!(f, "sched_setaffinity failed (errno {errno})"),
            AffinityError::InvalidCore(c) => write!(f, "core {c} outside the allowed CPU mask"),
        }
    }
}

impl std::error::Error for AffinityError {}

const MASK_WORDS: usize = 16; // 1024 CPUs, same as glibc's cpu_set_t.

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys {
    use super::MASK_WORDS;

    #[cfg(target_arch = "x86_64")]
    const SYS_SETAFFINITY: i64 = 203;
    #[cfg(target_arch = "x86_64")]
    const SYS_GETAFFINITY: i64 = 204;
    #[cfg(target_arch = "aarch64")]
    const SYS_SETAFFINITY: i64 = 122;
    #[cfg(target_arch = "aarch64")]
    const SYS_GETAFFINITY: i64 = 123;

    /// Raw 3-argument syscall. Returns the kernel's raw result
    /// (negative errno on failure).
    ///
    /// # Safety
    /// Arguments must satisfy syscall `num`'s contract (valid pointers).
    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall3(num: i64, a1: i64, a2: i64, a3: i64) -> i64 {
        let ret: i64;
        // SAFETY: caller upholds the syscall's contract (valid pointers and
        // lengths for `num`); the clobber list covers everything the x86-64
        // syscall ABI may trash (rax result, rcx/r11 scratched by the CPU).
        unsafe {
            core::arch::asm!(
                "syscall",
                inlateout("rax") num => ret,
                in("rdi") a1,
                in("rsi") a2,
                in("rdx") a3,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    /// Raw 3-argument syscall (negative errno on failure).
    ///
    /// # Safety
    /// Arguments must satisfy syscall `num`'s contract (valid pointers).
    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall3(num: i64, a1: i64, a2: i64, a3: i64) -> i64 {
        let ret: i64;
        // SAFETY: caller upholds the syscall's contract; aarch64 `svc 0`
        // takes the number in x8, arguments in x0-x2, result in x0.
        unsafe {
            core::arch::asm!(
                "svc 0",
                inlateout("x0") a1 => ret,
                in("x1") a2,
                in("x2") a3,
                in("x8") num,
                options(nostack),
            );
        }
        ret
    }

    /// `sched_setaffinity(0, …)` applies to the calling thread.
    pub fn set_affinity(mask: &[u64; MASK_WORDS]) -> Result<(), i32> {
        // SAFETY: we pass a valid, properly sized mask buffer; pid 0 means
        // "calling thread"; the syscall does not retain the pointer.
        let ret = unsafe {
            syscall3(
                SYS_SETAFFINITY,
                0,
                std::mem::size_of_val(mask) as i64,
                mask.as_ptr() as i64,
            )
        };
        if ret < 0 {
            Err((-ret) as i32)
        } else {
            Ok(())
        }
    }

    pub fn get_affinity(mask: &mut [u64; MASK_WORDS]) -> Result<usize, i32> {
        // SAFETY: as above; the kernel writes at most `size` bytes.
        let ret = unsafe {
            syscall3(
                SYS_GETAFFINITY,
                0,
                std::mem::size_of_val(mask) as i64,
                mask.as_mut_ptr() as i64,
            )
        };
        if ret < 0 {
            Err((-ret) as i32)
        } else {
            Ok(ret as usize)
        }
    }
}

/// `true` when this build can actually bind threads to cores.
pub fn is_supported() -> bool {
    cfg!(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))
}

/// Binds the calling thread to the single core `core`.
pub fn bind_current_thread(core: usize) -> Result<(), AffinityError> {
    bind_current_thread_to_set(&[core])
}

/// Binds the calling thread to a set of cores.
pub fn bind_current_thread_to_set(cores: &[usize]) -> Result<(), AffinityError> {
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    {
        let mut mask = [0u64; MASK_WORDS];
        for &c in cores {
            if c >= MASK_WORDS * 64 {
                return Err(AffinityError::InvalidCore(c));
            }
            mask[c / 64] |= 1 << (c % 64);
        }
        sys::set_affinity(&mask).map_err(AffinityError::Kernel)
    }
    #[cfg(not(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    )))]
    {
        let _ = cores;
        Err(AffinityError::Unsupported)
    }
}

/// Returns the cores the calling thread may currently run on.
pub fn current_affinity() -> Result<Vec<usize>, AffinityError> {
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    {
        let mut mask = [0u64; MASK_WORDS];
        let written = sys::get_affinity(&mut mask).map_err(AffinityError::Kernel)?;
        let mut cores = Vec::new();
        for (w, &word) in mask.iter().enumerate().take(written.div_ceil(8)) {
            for b in 0..64 {
                if word & (1 << b) != 0 {
                    cores.push(w * 64 + b);
                }
            }
        }
        Ok(cores)
    }
    #[cfg(not(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    )))]
    Err(AffinityError::Unsupported)
}

/// Restores the calling thread's affinity to all cores in `allowed`.
pub fn unbind_current_thread(allowed: &[usize]) -> Result<(), AffinityError> {
    bind_current_thread_to_set(allowed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn current_affinity_lists_cores_when_supported() {
        match current_affinity() {
            Ok(cores) => {
                assert!(!cores.is_empty());
                assert!(cores.windows(2).all(|w| w[0] < w[1]), "sorted, unique");
            }
            Err(AffinityError::Unsupported) => assert!(!is_supported()),
            Err(e) => panic!("unexpected affinity error: {e}"),
        }
    }

    #[test]
    fn bind_and_restore_round_trip() {
        if !is_supported() {
            return;
        }
        let original = current_affinity().expect("read original mask");
        let target = original[0];
        bind_current_thread(target).expect("bind to first allowed core");
        let bound = current_affinity().expect("read bound mask");
        assert_eq!(bound, vec![target]);
        unbind_current_thread(&original).expect("restore");
        assert_eq!(current_affinity().unwrap(), original);
    }

    #[test]
    fn out_of_range_core_rejected() {
        let err = bind_current_thread(MASK_WORDS * 64 + 1).unwrap_err();
        if is_supported() {
            assert_eq!(err, AffinityError::InvalidCore(MASK_WORDS * 64 + 1));
        } else {
            assert_eq!(err, AffinityError::Unsupported);
        }
    }

    #[test]
    fn binding_to_disallowed_core_fails_cleanly() {
        if !is_supported() {
            return;
        }
        // A core id far beyond anything present but within mask range.
        match bind_current_thread(1023) {
            Ok(()) => {
                // Extremely unlikely (1024-core machine); restore and accept.
                let all =
                    (0..std::thread::available_parallelism().unwrap().get()).collect::<Vec<_>>();
                let _ = unbind_current_thread(&all);
            }
            Err(AffinityError::Kernel(errno)) => assert_eq!(errno, 22 /* EINVAL */),
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
}
