//! Topology description and cache-distance model.

use std::fmt;
use std::time::Duration;

/// One logical core: its package (chip) and shared-cache group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreInfo {
    /// OS core id (index into the topology).
    pub id: usize,
    /// Physical package (socket/chip) this core belongs to.
    pub package: usize,
    /// Last-level shared-cache group; cores in the same group share an
    /// L2/L3 cache (on the paper's Xeon X5460, cores come in L2 pairs).
    pub cache_group: usize,
}

/// Cache distance between two cores, ordered from closest to farthest.
///
/// Fig 8's four curves are exactly these classes: polling on CPU 0 (same
/// core), CPU 1 (shared cache), CPU 2/3 (same chip, no shared cache), and —
/// on the dual-socket testbed — CPUs of the other chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Distance {
    /// The same core: no cache traffic at all.
    SameCore,
    /// A different core sharing a cache with this one.
    SharedCache,
    /// Same package, but no shared cache level (other die of an MCM).
    SamePackage,
    /// A core on another package.
    CrossPackage,
}

/// Per-distance polling penalties, in nanoseconds.
///
/// These are the constants the paper measures in §4.1; the simulator
/// charges them to every cross-core completion notification, and the
/// real-time benches measure them from actual cache traffic instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PollPenalties {
    /// Polling on the application core itself.
    pub same_core_ns: u64,
    /// Polling on a core sharing a cache (paper: 400 ns).
    pub shared_cache_ns: u64,
    /// Polling on the same chip without a shared cache (paper: 1.2 µs on
    /// the quad-core testbed, 2.3 µs on the dual quad-core one).
    pub same_package_ns: u64,
    /// Polling on another chip (paper: 3.1 µs).
    pub cross_package_ns: u64,
}

impl PollPenalties {
    /// Quad-core Xeon X5460 constants from §4.1.
    pub const XEON_X5460: PollPenalties = PollPenalties {
        same_core_ns: 0,
        shared_cache_ns: 400,
        same_package_ns: 1_200,
        cross_package_ns: 1_200,
    };

    /// Dual quad-core Xeon constants from §4.1.
    pub const DUAL_XEON: PollPenalties = PollPenalties {
        same_core_ns: 0,
        shared_cache_ns: 400,
        same_package_ns: 2_300,
        cross_package_ns: 3_100,
    };

    /// Penalty for a given distance class.
    pub fn for_distance(&self, d: Distance) -> Duration {
        let ns = match d {
            Distance::SameCore => self.same_core_ns,
            Distance::SharedCache => self.shared_cache_ns,
            Distance::SamePackage => self.same_package_ns,
            Distance::CrossPackage => self.cross_package_ns,
        };
        Duration::from_nanos(ns)
    }
}

/// A machine topology: cores grouped by shared cache and package.
#[derive(Clone)]
pub struct Topology {
    name: String,
    cores: Vec<CoreInfo>,
    penalties: PollPenalties,
}

impl Topology {
    /// Builds a topology from explicit core descriptions.
    ///
    /// # Panics
    /// Panics if `cores` is empty or core ids are not `0..n` in order.
    pub fn from_cores(
        name: impl Into<String>,
        cores: Vec<CoreInfo>,
        penalties: PollPenalties,
    ) -> Self {
        assert!(!cores.is_empty(), "topology needs at least one core");
        for (i, c) in cores.iter().enumerate() {
            assert_eq!(c.id, i, "core ids must be dense and ordered");
        }
        Topology {
            name: name.into(),
            cores,
            penalties,
        }
    }

    /// The paper's primary testbed: one quad-core Xeon X5460, organized as
    /// two dual-core dies, each pair sharing an L2 cache
    /// (cores {0,1} and {2,3}).
    pub fn xeon_x5460() -> Self {
        let cores = (0..4)
            .map(|id| CoreInfo {
                id,
                package: 0,
                cache_group: id / 2,
            })
            .collect();
        Self::from_cores("xeon-x5460", cores, PollPenalties::XEON_X5460)
    }

    /// The paper's secondary testbed: two quad-core Xeons (8 cores, two
    /// packages, L2 shared per core pair).
    pub fn dual_xeon_x5460() -> Self {
        let cores = (0..8)
            .map(|id| CoreInfo {
                id,
                package: id / 4,
                cache_group: id / 2,
            })
            .collect();
        Self::from_cores("dual-xeon-x5460", cores, PollPenalties::DUAL_XEON)
    }

    /// A flat SMP: `n` cores, one package, one shared cache.
    pub fn uniform(n: usize) -> Self {
        let cores = (0..n)
            .map(|id| CoreInfo {
                id,
                package: 0,
                cache_group: 0,
            })
            .collect();
        Self::from_cores(
            format!("uniform-{n}"),
            cores,
            PollPenalties {
                same_core_ns: 0,
                shared_cache_ns: 400,
                same_package_ns: 400,
                cross_package_ns: 400,
            },
        )
    }

    /// Discovers the host topology from `/sys` (Linux), falling back to a
    /// uniform topology sized by `std::thread::available_parallelism`.
    pub fn discover() -> Self {
        crate::discover::discover().unwrap_or_else(|| {
            let n = std::thread::available_parallelism().map_or(1, |n| n.get());
            Self::uniform(n)
        })
    }

    /// Human-readable topology name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Core description by id.
    pub fn core(&self, id: usize) -> &CoreInfo {
        &self.cores[id]
    }

    /// All cores.
    pub fn cores(&self) -> &[CoreInfo] {
        &self.cores
    }

    /// Number of distinct packages.
    pub fn num_packages(&self) -> usize {
        self.cores
            .iter()
            .map(|c| c.package)
            .max()
            .map_or(0, |m| m + 1)
    }

    /// Cache distance between two cores.
    pub fn distance(&self, a: usize, b: usize) -> Distance {
        let (ca, cb) = (&self.cores[a], &self.cores[b]);
        if ca.id == cb.id {
            Distance::SameCore
        } else if ca.cache_group == cb.cache_group {
            Distance::SharedCache
        } else if ca.package == cb.package {
            Distance::SamePackage
        } else {
            Distance::CrossPackage
        }
    }

    /// Polling penalty charged by the simulator for completions produced on
    /// core `producer` and polled from core `poller`.
    pub fn poll_penalty(&self, poller: usize, producer: usize) -> Duration {
        self.penalties.for_distance(self.distance(poller, producer))
    }

    /// The per-class penalty table.
    pub fn penalties(&self) -> PollPenalties {
        self.penalties
    }

    /// A core of each distinct distance class relative to `origin`, closest
    /// first. Used by Fig 8 to pick its "CPU 0 / 1 / 2 / 4" placements.
    pub fn representative_cores(&self, origin: usize) -> Vec<(Distance, usize)> {
        let mut reps = vec![(Distance::SameCore, origin)];
        for d in [
            Distance::SharedCache,
            Distance::SamePackage,
            Distance::CrossPackage,
        ] {
            if let Some(c) = self.cores.iter().find(|c| self.distance(origin, c.id) == d) {
                reps.push((d, c.id));
            }
        }
        reps
    }
}

impl fmt::Debug for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Topology")
            .field("name", &self.name)
            .field("cores", &self.cores.len())
            .field("packages", &self.num_packages())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xeon_x5460_layout() {
        let t = Topology::xeon_x5460();
        assert_eq!(t.num_cores(), 4);
        assert_eq!(t.num_packages(), 1);
        assert_eq!(t.distance(0, 0), Distance::SameCore);
        assert_eq!(t.distance(0, 1), Distance::SharedCache);
        assert_eq!(t.distance(0, 2), Distance::SamePackage);
        assert_eq!(t.distance(0, 3), Distance::SamePackage);
        assert_eq!(t.distance(2, 3), Distance::SharedCache);
    }

    #[test]
    fn dual_xeon_layout() {
        let t = Topology::dual_xeon_x5460();
        assert_eq!(t.num_cores(), 8);
        assert_eq!(t.num_packages(), 2);
        assert_eq!(t.distance(0, 4), Distance::CrossPackage);
        assert_eq!(t.distance(0, 7), Distance::CrossPackage);
        assert_eq!(t.distance(4, 5), Distance::SharedCache);
        assert_eq!(t.distance(4, 6), Distance::SamePackage);
    }

    #[test]
    fn distance_is_symmetric() {
        for t in [Topology::xeon_x5460(), Topology::dual_xeon_x5460()] {
            for a in 0..t.num_cores() {
                for b in 0..t.num_cores() {
                    assert_eq!(t.distance(a, b), t.distance(b, a));
                }
            }
        }
    }

    #[test]
    fn paper_penalties() {
        let t = Topology::xeon_x5460();
        assert_eq!(t.poll_penalty(0, 0), Duration::ZERO);
        assert_eq!(t.poll_penalty(1, 0), Duration::from_nanos(400));
        assert_eq!(t.poll_penalty(2, 0), Duration::from_nanos(1_200));

        let d = Topology::dual_xeon_x5460();
        assert_eq!(d.poll_penalty(1, 0), Duration::from_nanos(400));
        assert_eq!(d.poll_penalty(2, 0), Duration::from_nanos(2_300));
        assert_eq!(d.poll_penalty(4, 0), Duration::from_nanos(3_100));
    }

    #[test]
    fn representative_cores_cover_all_classes() {
        let t = Topology::dual_xeon_x5460();
        let reps = t.representative_cores(0);
        let classes: Vec<Distance> = reps.iter().map(|(d, _)| *d).collect();
        assert_eq!(
            classes,
            vec![
                Distance::SameCore,
                Distance::SharedCache,
                Distance::SamePackage,
                Distance::CrossPackage
            ]
        );
        // And the chosen cores actually have those distances.
        for (d, c) in reps {
            assert_eq!(t.distance(0, c), d);
        }
    }

    #[test]
    fn uniform_topology_all_shared() {
        let t = Topology::uniform(3);
        assert_eq!(t.distance(0, 2), Distance::SharedCache);
        assert_eq!(t.representative_cores(0).len(), 2);
    }

    #[test]
    #[should_panic(expected = "dense and ordered")]
    fn non_dense_core_ids_rejected() {
        let _ = Topology::from_cores(
            "bad",
            vec![CoreInfo {
                id: 1,
                package: 0,
                cache_group: 0,
            }],
            PollPenalties::XEON_X5460,
        );
    }

    #[test]
    fn discover_never_panics_and_has_cores() {
        let t = Topology::discover();
        assert!(t.num_cores() >= 1);
        // Every core must classify against core 0 without panicking.
        for c in 0..t.num_cores() {
            let _ = t.distance(0, c);
        }
    }
}
