//! Machine topology model, discovery and thread affinity.
//!
//! Figure 8 of the paper measures the cost of *where* the polling runs
//! relative to the application thread: on the same core, on a core sharing
//! an L2 cache, on a core of the same chip with a separate cache, or on
//! another chip. This crate provides:
//!
//! * [`Topology`] — a description of cores, shared-cache groups and
//!   packages, with presets matching the paper's testbeds
//!   ([`Topology::xeon_x5460`], [`Topology::dual_xeon_x5460`]) and
//!   discovery from `/sys` on Linux ([`Topology::discover`]).
//! * [`Distance`] — the cache-distance classification between two cores,
//!   plus per-class polling penalties used by the deterministic simulator.
//! * [`affinity`] — binding the current thread to a core via a raw
//!   `sched_setaffinity` syscall (no libc dependency), with a graceful
//!   fallback on unsupported platforms.

#![warn(missing_docs)]

pub mod affinity;
mod discover;
mod topology;

pub use topology::{CoreInfo, Distance, PollPenalties, Topology};
