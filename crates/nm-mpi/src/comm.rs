//! Communicators: the per-rank API handle.

use std::sync::Arc;

use bytes::Bytes;

use nm_core::{CommCore, CommError, GateId, Request};
use nm_sync::WaitStrategy;

/// Errors surfaced by the MPI façade.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpiError {
    /// Underlying communication error.
    Comm(CommError),
    /// Rank outside the world, or self-addressed message.
    InvalidRank(usize),
}

impl std::fmt::Display for MpiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpiError::Comm(e) => write!(f, "{e}"),
            MpiError::InvalidRank(r) => write!(f, "invalid rank {r}"),
        }
    }
}

impl std::error::Error for MpiError {}

impl From<CommError> for MpiError {
    fn from(e: CommError) -> Self {
        MpiError::Comm(e)
    }
}

/// A rank's handle into the world.
///
/// Cloneable; clones share the rank's communication core. Thread safety
/// follows the world's [`ThreadLevel`](crate::ThreadLevel).
#[derive(Clone)]
pub struct Comm {
    rank: usize,
    core: Arc<CommCore>,
    /// `peers[gate] = rank` mapping (dense, self skipped).
    peers: Vec<usize>,
    wait: WaitStrategy,
}

impl Comm {
    pub(crate) fn new(
        rank: usize,
        core: Arc<CommCore>,
        peers: Vec<usize>,
        wait: WaitStrategy,
    ) -> Self {
        Comm {
            rank,
            core,
            peers,
            wait,
        }
    }

    /// This communicator's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.peers.len() + 1
    }

    /// The underlying communication core.
    pub fn core(&self) -> &Arc<CommCore> {
        &self.core
    }

    /// The default waiting strategy.
    pub fn wait_strategy(&self) -> WaitStrategy {
        self.wait
    }

    /// Returns a clone using a different default waiting strategy.
    pub fn with_wait_strategy(&self, wait: WaitStrategy) -> Comm {
        let mut c = self.clone();
        c.wait = wait;
        c
    }

    fn gate(&self, peer: usize) -> Result<GateId, MpiError> {
        if peer == self.rank {
            return Err(MpiError::InvalidRank(peer));
        }
        self.peers
            .iter()
            .position(|&p| p == peer)
            .map(GateId)
            .ok_or(MpiError::InvalidRank(peer))
    }

    /// The single peer of a two-rank world.
    fn only_peer(&self) -> Result<usize, MpiError> {
        if self.peers.len() == 1 {
            Ok(self.peers[0])
        } else {
            Err(MpiError::InvalidRank(usize::MAX))
        }
    }

    // ---- two-rank convenience (peer implied) ---------------------------

    /// Blocking send to the only peer (two-rank worlds).
    pub fn send(&self, tag: u64, data: &[u8]) -> Result<(), MpiError> {
        self.send_to(self.only_peer()?, tag, data)
    }

    /// Blocking receive from the only peer (two-rank worlds).
    pub fn recv(&self, tag: u64) -> Result<Vec<u8>, MpiError> {
        self.recv_from(self.only_peer()?, tag)
    }

    /// Non-blocking send to the only peer.
    pub fn isend(&self, tag: u64, data: &[u8]) -> Result<Request, MpiError> {
        self.isend_to(self.only_peer()?, tag, data)
    }

    /// Non-blocking receive from the only peer.
    pub fn irecv(&self, tag: u64) -> Result<Request, MpiError> {
        self.irecv_from(self.only_peer()?, tag)
    }

    // ---- addressed operations ------------------------------------------

    /// Blocking send to `peer`.
    pub fn send_to(&self, peer: usize, tag: u64, data: &[u8]) -> Result<(), MpiError> {
        let gate = self.gate(peer)?;
        self.core
            .send(gate, tag, Bytes::copy_from_slice(data), self.wait)?;
        Ok(())
    }

    /// Blocking receive from `peer`.
    pub fn recv_from(&self, peer: usize, tag: u64) -> Result<Vec<u8>, MpiError> {
        let gate = self.gate(peer)?;
        Ok(self.core.recv(gate, tag, self.wait)?.to_vec())
    }

    /// Non-blocking send to `peer`.
    pub fn isend_to(&self, peer: usize, tag: u64, data: &[u8]) -> Result<Request, MpiError> {
        let gate = self.gate(peer)?;
        Ok(self.core.isend(gate, tag, Bytes::copy_from_slice(data))?)
    }

    /// Non-blocking zero-copy send to `peer`.
    pub fn isend_bytes_to(&self, peer: usize, tag: u64, data: Bytes) -> Result<Request, MpiError> {
        let gate = self.gate(peer)?;
        Ok(self.core.isend(gate, tag, data)?)
    }

    /// Non-blocking receive from `peer`.
    pub fn irecv_from(&self, peer: usize, tag: u64) -> Result<Request, MpiError> {
        let gate = self.gate(peer)?;
        Ok(self.core.irecv(gate, tag)?)
    }

    /// Non-blocking wildcard receive from `peer` (`MPI_ANY_TAG`): matches
    /// the earliest message of any tag; see [`Request::matched_tag`].
    pub fn irecv_any_from(&self, peer: usize) -> Result<Request, MpiError> {
        let gate = self.gate(peer)?;
        Ok(self.core.irecv_any(gate)?)
    }

    /// Blocking wildcard receive from `peer`: returns `(tag, payload)`.
    pub fn recv_any_from(&self, peer: usize) -> Result<(u64, Vec<u8>), MpiError> {
        let req = self.irecv_any_from(peer)?;
        self.wait(&req);
        let tag = req.matched_tag().expect("completed recv has a tag");
        Ok((
            tag,
            req.take_data().expect("completed recv has data").to_vec(),
        ))
    }

    /// Waits for a request with this communicator's strategy.
    pub fn wait(&self, req: &Request) {
        self.core.wait(req, self.wait);
    }

    /// Waits for all requests.
    pub fn wait_all(&self, reqs: &[Request]) {
        for r in reqs {
            self.wait(r);
        }
    }

    /// Combined send+receive with the same peer (classic pingpong body).
    pub fn sendrecv(&self, peer: usize, tag: u64, data: &[u8]) -> Result<Vec<u8>, MpiError> {
        let recv = self.irecv_from(peer, tag)?;
        let send = self.isend_to(peer, tag, data)?;
        self.wait(&send);
        self.wait(&recv);
        Ok(recv
            .take_data()
            .expect("completed recv carries data")
            .to_vec())
    }

    /// A simple linear barrier rooted at rank 0 (uses the reserved
    /// internal tag space).
    pub fn barrier(&self) -> Result<(), MpiError> {
        const BARRIER_TAG: u64 = u64::MAX; // reserved
        let n = self.size();
        if n == 1 {
            return Ok(());
        }
        if self.rank == 0 {
            for peer in 1..n {
                self.recv_from(peer, BARRIER_TAG)?;
            }
            for peer in 1..n {
                self.send_to(peer, BARRIER_TAG, b"")?;
            }
        } else {
            self.send_to(0, BARRIER_TAG, b"")?;
            self.recv_from(0, BARRIER_TAG)?;
        }
        Ok(())
    }
}

impl std::fmt::Debug for Comm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Comm")
            .field("rank", &self.rank)
            .field("size", &self.size())
            .finish()
    }
}
