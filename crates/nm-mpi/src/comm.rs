//! Communicators and endpoints: the per-rank API handles.
//!
//! Point-to-point operations follow the "scalable communication
//! endpoints" shape: [`Comm::peer`] returns an [`Endpoint`] bound to
//! one peer rank, and all operations live there — blocking
//! (`send`/`recv`), non-blocking (`isend`/`irecv` + [`Endpoint::wait`]),
//! and async ([`Endpoint::send_async`]/[`Endpoint::recv_async`], which
//! return futures whose wakers register with the progress engine; see
//! `docs/COMPLETION.md`). The former tagless/addressed shim sets
//! (`comm.send`, `comm.send_to`, ...) are gone; the crate compiles with
//! `#![deny(deprecated)]`.
//!
//! ```
//! use nm_mpi::{World, ThreadLevel};
//!
//! let world = World::pair(ThreadLevel::Multiple);
//! let (a, b) = world.comm_pair();
//! let to_b = a.peer(1).unwrap();      // or a.sole_peer() in a pair
//! let from_a = b.peer(0).unwrap();
//! let echo = std::thread::spawn(move || {
//!     let m = from_a.recv(1).unwrap();
//!     from_a.send(1, &m).unwrap();
//! });
//! to_b.send(1, b"ping").unwrap();
//! assert_eq!(to_b.recv(1).unwrap(), b"ping");
//! echo.join().unwrap();
//! ```
//!
//! [`Comm::wait`]/[`Comm::wait_all`] surface request errors as
//! `Result<(), MpiError>`, forwarding `nm-core`'s own fallible waits —
//! the two layers share one error story via `From<CommError>`.

use std::sync::{Arc, OnceLock};

use bytes::Bytes;

use nm_core::{CommCore, CommError, Completion, GateId, Request};
use nm_progress::WakerTable;
use nm_sync::WaitStrategy;

use crate::future::{RecvFuture, SendFuture};

/// Latency of facade-level blocking waits ([`Endpoint::wait`] /
/// [`Comm::wait`], ns) — the application-visible wait cost, one layer
/// above `core.wait_ns`.
fn mpi_wait_hist() -> &'static Arc<nm_metrics::Histogram> {
    static H: OnceLock<Arc<nm_metrics::Histogram>> = OnceLock::new();
    H.get_or_init(|| nm_metrics::metrics().histogram("mpi.wait_ns"))
}

/// Errors surfaced by the MPI façade.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpiError {
    /// Underlying communication error.
    Comm(CommError),
    /// Rank outside the world, or self-addressed message.
    InvalidRank(usize),
}

impl std::fmt::Display for MpiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpiError::Comm(e) => write!(f, "{e}"),
            MpiError::InvalidRank(r) => write!(f, "invalid rank {r}"),
        }
    }
}

impl std::error::Error for MpiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MpiError::Comm(e) => Some(e),
            MpiError::InvalidRank(_) => None,
        }
    }
}

impl From<CommError> for MpiError {
    fn from(e: CommError) -> Self {
        MpiError::Comm(e)
    }
}

/// A rank's handle into the world.
///
/// Cloneable; clones share the rank's communication core. Thread safety
/// follows the world's [`ThreadLevel`](crate::ThreadLevel). Point-to-point
/// operations live on [`Endpoint`] (see [`Comm::peer`]); `Comm` keeps
/// the world-level surface: collectives, [`barrier`](Comm::barrier),
/// [`wait`](Comm::wait).
#[derive(Clone)]
pub struct Comm {
    rank: usize,
    core: Arc<CommCore>,
    /// `peers[gate] = rank` mapping (dense, self skipped).
    peers: Vec<usize>,
    wait: WaitStrategy,
    /// Waker table shared by every async operation of this rank; clones
    /// of the communicator (and its endpoints) deliver into the same
    /// table.
    wakers: Arc<WakerTable>,
}

/// One rank's communication channel toward a single peer.
///
/// Obtained from [`Comm::peer`] (or [`Comm::sole_peer`] in two-rank
/// worlds); cheap to create and to clone, and usable from any thread the
/// world's [`ThreadLevel`](crate::ThreadLevel) allows. Holding an
/// `Endpoint` amortizes the peer→gate lookup across operations.
#[derive(Clone)]
pub struct Endpoint {
    rank: usize,
    peer: usize,
    gate: GateId,
    core: Arc<CommCore>,
    wait: WaitStrategy,
    wakers: Arc<WakerTable>,
}

impl Endpoint {
    /// The local rank this endpoint belongs to.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The remote rank this endpoint reaches.
    pub fn peer(&self) -> usize {
        self.peer
    }

    /// The gate id this endpoint maps to on the local core.
    pub fn gate(&self) -> GateId {
        self.gate
    }

    /// The waiting strategy used by this endpoint's blocking operations.
    pub fn wait_strategy(&self) -> WaitStrategy {
        self.wait
    }

    /// Returns a clone using a different waiting strategy.
    pub fn with_wait_strategy(&self, wait: WaitStrategy) -> Endpoint {
        let mut e = self.clone();
        e.wait = wait;
        e
    }

    /// Blocking send.
    pub fn send(&self, tag: u64, data: &[u8]) -> Result<(), MpiError> {
        self.core
            .send(self.gate, tag, Bytes::copy_from_slice(data), self.wait)?;
        Ok(())
    }

    /// Blocking receive.
    pub fn recv(&self, tag: u64) -> Result<Vec<u8>, MpiError> {
        Ok(self.core.recv(self.gate, tag, self.wait)?.to_vec())
    }

    /// Non-blocking send.
    pub fn isend(&self, tag: u64, data: &[u8]) -> Result<Request, MpiError> {
        self.isend_bytes(tag, Bytes::copy_from_slice(data))
    }

    /// Non-blocking zero-copy send.
    pub fn isend_bytes(&self, tag: u64, data: Bytes) -> Result<Request, MpiError> {
        Ok(self.core.isend(self.gate, tag, data)?)
    }

    /// Non-blocking receive.
    pub fn irecv(&self, tag: u64) -> Result<Request, MpiError> {
        Ok(self.core.irecv(self.gate, tag)?)
    }

    /// Non-blocking wildcard receive (`MPI_ANY_TAG`): matches the
    /// earliest message of any tag; see [`Request::matched_tag`].
    pub fn irecv_any(&self) -> Result<Request, MpiError> {
        Ok(self.core.irecv_any(self.gate)?)
    }

    /// Blocking wildcard receive: returns `(tag, payload)`.
    pub fn recv_any(&self) -> Result<(u64, Vec<u8>), MpiError> {
        let req = self.irecv_any()?;
        self.wait(&req)?;
        let tag = req.matched_tag().expect("completed recv has a tag");
        Ok((
            tag,
            req.take_data().expect("completed recv has data").to_vec(),
        ))
    }

    /// Combined send+receive with this peer (classic pingpong body).
    pub fn sendrecv(&self, tag: u64, data: &[u8]) -> Result<Vec<u8>, MpiError> {
        let recv = self.irecv(tag)?;
        let send = self.isend(tag, data)?;
        self.wait(&send)?;
        self.wait(&recv)?;
        Ok(recv
            .take_data()
            .expect("completed recv carries data")
            .to_vec())
    }

    /// Waits for a request with this endpoint's strategy, surfacing any
    /// request error.
    pub fn wait(&self, req: &Request) -> Result<(), MpiError> {
        let _t = mpi_wait_hist().timer();
        self.core.wait(req, self.wait)?;
        Ok(())
    }

    /// Like [`Endpoint::wait`], bounded by `timeout`: if the deadline
    /// passes first the request finishes with
    /// [`CommError::Timeout`](nm_core::CommError::Timeout) (its posting
    /// is reaped, nothing leaks) and `Err` is returned.
    pub fn wait_deadline(
        &self,
        req: &Request,
        timeout: std::time::Duration,
    ) -> Result<(), MpiError> {
        let _t = mpi_wait_hist().timer();
        self.core.wait_deadline(req, self.wait, timeout)?;
        Ok(())
    }

    /// Blocking receive bounded by `timeout`.
    pub fn recv_timeout(
        &self,
        tag: u64,
        timeout: std::time::Duration,
    ) -> Result<Vec<u8>, MpiError> {
        let req = self.irecv(tag)?;
        self.wait_deadline(&req, timeout)?;
        Ok(req.take_data().expect("completed recv has data").to_vec())
    }

    // ---- async facade --------------------------------------------------

    /// Async send: posts immediately, resolves when the message is
    /// injected. The returned future's waker registers with the progress
    /// engine's waker table and is woken on completion delivery — no
    /// thread blocks per operation, so one executor can multiplex
    /// thousands of outstanding operations.
    ///
    /// Something must drive progression while the future is pending: a
    /// [`ProgressionThread`](nm_progress::ProgressionThread), scheduler
    /// hooks, or an executor poll hook such as
    /// [`exec::block_on_with`](crate::exec::block_on_with).
    pub fn send_async(&self, tag: u64, data: &[u8]) -> SendFuture {
        self.send_async_bytes(tag, Bytes::copy_from_slice(data))
    }

    /// Zero-copy [`Endpoint::send_async`].
    pub fn send_async_bytes(&self, tag: u64, data: Bytes) -> SendFuture {
        match self
            .core
            .isend_with(self.gate, tag, data, Completion::waker(&self.wakers))
        {
            Ok(req) => SendFuture::pending(req, Arc::clone(&self.wakers)),
            Err(e) => SendFuture::failed(e.into()),
        }
    }

    /// Async receive: resolves to the payload once a matching message
    /// arrives. Zero-copy (`Bytes`); see [`Endpoint::send_async`] for
    /// the progression requirement.
    pub fn recv_async(&self, tag: u64) -> RecvFuture {
        match self
            .core
            .irecv_with(self.gate, tag, Completion::waker(&self.wakers))
        {
            Ok(req) => RecvFuture::pending(req, Arc::clone(&self.wakers)),
            Err(e) => RecvFuture::failed(e.into()),
        }
    }

    /// [`Endpoint::recv_async`] with a deadline: unless a matching
    /// message arrives within `timeout`, a progression pass finishes the
    /// request with [`CommError::Timeout`](nm_core::CommError::Timeout)
    /// and the future resolves to `Err` — no thread watches the clock.
    pub fn recv_async_deadline(&self, tag: u64, timeout: std::time::Duration) -> RecvFuture {
        match self
            .core
            .irecv_with(self.gate, tag, Completion::waker(&self.wakers))
        {
            Ok(req) => {
                self.core.expire_after(&req, timeout);
                RecvFuture::pending(req, Arc::clone(&self.wakers))
            }
            Err(e) => RecvFuture::failed(e.into()),
        }
    }

    /// The waker table async operations of this endpoint deliver into
    /// (diagnostics: its `len()` is the number of parked futures).
    pub fn waker_table(&self) -> &Arc<WakerTable> {
        &self.wakers
    }
}

impl std::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoint")
            .field("rank", &self.rank)
            .field("peer", &self.peer)
            .field("gate", &self.gate)
            .finish()
    }
}

impl Comm {
    pub(crate) fn new(
        rank: usize,
        core: Arc<CommCore>,
        peers: Vec<usize>,
        wait: WaitStrategy,
    ) -> Self {
        Comm {
            rank,
            core,
            peers,
            wait,
            wakers: Arc::new(WakerTable::new()),
        }
    }

    /// This communicator's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.peers.len() + 1
    }

    /// The underlying communication core.
    pub fn core(&self) -> &Arc<CommCore> {
        &self.core
    }

    /// The default waiting strategy.
    pub fn wait_strategy(&self) -> WaitStrategy {
        self.wait
    }

    /// Returns a clone using a different default waiting strategy.
    pub fn with_wait_strategy(&self, wait: WaitStrategy) -> Comm {
        let mut c = self.clone();
        c.wait = wait;
        c
    }

    fn gate(&self, peer: usize) -> Result<GateId, MpiError> {
        if peer == self.rank {
            return Err(MpiError::InvalidRank(peer));
        }
        self.peers
            .iter()
            .position(|&p| p == peer)
            .map(GateId)
            .ok_or(MpiError::InvalidRank(peer))
    }

    // ---- endpoints -----------------------------------------------------

    /// The endpoint toward rank `peer`.
    ///
    /// Fails with [`MpiError::InvalidRank`] for self or out-of-world
    /// ranks. The endpoint inherits this communicator's waiting strategy.
    pub fn peer(&self, peer: usize) -> Result<Endpoint, MpiError> {
        Ok(Endpoint {
            rank: self.rank,
            peer,
            gate: self.gate(peer)?,
            core: Arc::clone(&self.core),
            wait: self.wait,
            wakers: Arc::clone(&self.wakers),
        })
    }

    /// The endpoint toward the only peer of a two-rank world.
    pub fn sole_peer(&self) -> Result<Endpoint, MpiError> {
        if self.peers.len() == 1 {
            self.peer(self.peers[0])
        } else {
            Err(MpiError::InvalidRank(usize::MAX))
        }
    }

    /// Endpoints toward every peer rank, in rank order.
    pub fn peers(&self) -> Vec<Endpoint> {
        self.peers
            .iter()
            .map(|&p| self.peer(p).expect("peer table entries are valid"))
            .collect()
    }

    // ---- waiting -------------------------------------------------------

    /// Waits for a request with this communicator's strategy, surfacing
    /// any request error.
    pub fn wait(&self, req: &Request) -> Result<(), MpiError> {
        let _t = mpi_wait_hist().timer();
        self.core.wait(req, self.wait)?;
        Ok(())
    }

    /// Like [`Comm::wait`], bounded by `timeout` (see
    /// [`Endpoint::wait_deadline`]).
    pub fn wait_deadline(
        &self,
        req: &Request,
        timeout: std::time::Duration,
    ) -> Result<(), MpiError> {
        let _t = mpi_wait_hist().timer();
        self.core.wait_deadline(req, self.wait, timeout)?;
        Ok(())
    }

    /// Waits for all requests; reports the first error after every
    /// request has completed (no request is left unwaited).
    pub fn wait_all(&self, reqs: &[Request]) -> Result<(), MpiError> {
        let mut first_err = None;
        for r in reqs {
            if let Err(e) = self.wait(r) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    // ---- collectives helpers -------------------------------------------

    /// A simple linear barrier rooted at rank 0 (uses the reserved
    /// internal tag space).
    pub fn barrier(&self) -> Result<(), MpiError> {
        const BARRIER_TAG: u64 = u64::MAX; // reserved
        let n = self.size();
        if n == 1 {
            return Ok(());
        }
        if self.rank == 0 {
            for peer in 1..n {
                self.peer(peer)?.recv(BARRIER_TAG)?;
            }
            for peer in 1..n {
                self.peer(peer)?.send(BARRIER_TAG, b"")?;
            }
        } else {
            let root = self.peer(0)?;
            root.send(BARRIER_TAG, b"")?;
            root.recv(BARRIER_TAG)?;
        }
        Ok(())
    }
}

impl std::fmt::Debug for Comm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Comm")
            .field("rank", &self.rank)
            .field("size", &self.size())
            .finish()
    }
}
