//! [`SendFuture`] / [`RecvFuture`]: the async faces of `isend`/`irecv`.
//!
//! Returned by [`Endpoint::send_async`](crate::Endpoint::send_async) and
//! [`Endpoint::recv_async`](crate::Endpoint::recv_async). The operation
//! is posted *eagerly* (at call time, not first poll); the future only
//! observes completion. Awaiting follows the register-then-recheck
//! protocol against the progress engine's
//! [`WakerTable`](nm_progress::WakerTable):
//!
//! 1. if the request is already complete → `Ready`;
//! 2. register the task's waker under the request id — a `false` return
//!    means completion delivery already ran → `Ready`;
//! 3. re-check completion (delivery may have landed between 1 and 2
//!    without finding the waker) → `Ready` if so, else `Pending`.
//!
//! Delivery signals the request's completion flag *before* waking, so a
//! woken (or re-checking) future always observes the terminal state.
//! Dropping a pending future abandons the operation's result but
//! unregisters its waker, so the table never accumulates dead entries.

use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll};

use bytes::Bytes;

use nm_core::Request;
use nm_progress::WakerTable;

use crate::comm::MpiError;

enum State {
    /// Posting failed; the error is yielded at first poll.
    Failed(Option<MpiError>),
    /// Posted; awaiting completion delivery.
    Pending {
        req: Request,
        table: Arc<WakerTable>,
    },
    /// Yielded its output.
    Done,
}

/// One poll step of the register-then-recheck protocol; `Ready` carries
/// the completed request with its error already consumed.
fn poll_state(state: &mut State, cx: &mut Context<'_>) -> Poll<Result<Request, MpiError>> {
    match state {
        State::Failed(e) => {
            let e = e.take().expect("future polled after completion");
            *state = State::Done;
            Poll::Ready(Err(e))
        }
        State::Done => panic!("future polled after completion"),
        State::Pending { req, table } => {
            let ready = if req.is_complete() {
                // Completed before this poll (eager sends, raced recvs).
                table.unregister(req.id());
                true
            } else if !table.register_spanned(req.id(), req.span(), cx.waker()) {
                // Delivery won the race and already consumed the entry.
                true
            } else {
                // Registered; re-check in case delivery landed between
                // the check and the registration without seeing a waker.
                let done = req.is_complete();
                if done {
                    table.unregister(req.id());
                }
                done
            };
            if !ready {
                return Poll::Pending;
            }
            let out = match req.take_error() {
                Some(e) => Err(e.into()),
                None => Ok(req.clone()),
            };
            *state = State::Done;
            Poll::Ready(out)
        }
    }
}

fn drop_state(state: &mut State) {
    if let State::Pending { req, table } = state {
        table.unregister(req.id());
    }
}

/// Future of an async send; resolves once the message is injected.
pub struct SendFuture {
    state: State,
}

impl SendFuture {
    pub(crate) fn pending(req: Request, table: Arc<WakerTable>) -> Self {
        SendFuture {
            state: State::Pending { req, table },
        }
    }

    pub(crate) fn failed(e: MpiError) -> Self {
        SendFuture {
            state: State::Failed(Some(e)),
        }
    }
}

impl Future for SendFuture {
    type Output = Result<(), MpiError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        poll_state(&mut self.get_mut().state, cx).map(|r| r.map(|_req| ()))
    }
}

impl Drop for SendFuture {
    fn drop(&mut self) {
        drop_state(&mut self.state);
    }
}

/// Future of an async receive; resolves to the payload (zero-copy
/// `Bytes`, unlike the blocking `recv`'s `Vec<u8>`).
pub struct RecvFuture {
    state: State,
}

impl RecvFuture {
    pub(crate) fn pending(req: Request, table: Arc<WakerTable>) -> Self {
        RecvFuture {
            state: State::Pending { req, table },
        }
    }

    pub(crate) fn failed(e: MpiError) -> Self {
        RecvFuture {
            state: State::Failed(Some(e)),
        }
    }
}

impl Future for RecvFuture {
    type Output = Result<Bytes, MpiError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        poll_state(&mut self.get_mut().state, cx)
            .map(|r| r.map(|req| req.take_data().expect("completed recv carries data")))
    }
}

impl Drop for RecvFuture {
    fn drop(&mut self) {
        drop_state(&mut self.state);
    }
}
