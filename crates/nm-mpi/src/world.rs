//! World construction: ranks wired through the simulated fabric.

use std::sync::Arc;

use nm_core::{CommCore, CoreBuilder, CoreConfig, GateId, LockingMode};
use nm_fabric::{ClockSource, Fabric, NodePorts, WireModel};
use nm_sync::WaitStrategy;

use crate::comm::Comm;

/// MPI thread-support levels (`MPI_THREAD_*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThreadLevel {
    /// Only one thread exists.
    Single,
    /// Multiple threads, but only the main one communicates.
    Funneled,
    /// Multiple threads communicate, never concurrently.
    Serialized,
    /// Any thread communicates at any time (the paper's focus).
    Multiple,
}

impl ThreadLevel {
    /// The locking mode implementing this level.
    pub fn locking(&self) -> LockingMode {
        match self {
            ThreadLevel::Single => LockingMode::SingleThread,
            // One caller at a time: the cheap library-wide lock suffices.
            ThreadLevel::Funneled | ThreadLevel::Serialized => LockingMode::Coarse,
            ThreadLevel::Multiple => LockingMode::Fine,
        }
    }
}

/// World construction parameters.
#[derive(Clone)]
pub struct WorldConfig {
    /// Thread level (determines the locking mode).
    pub level: ThreadLevel,
    /// One wire model per rail between each pair of ranks.
    pub rails: Vec<WireModel>,
    /// Base core configuration (locking is overridden by `level`).
    pub core: CoreConfig,
    /// Whether drivers are thread-safe (MX-style drivers are not).
    pub thread_safe_drivers: bool,
    /// Default waiting strategy of the communicators.
    pub wait: WaitStrategy,
    /// Clock the fabric stamps packets with.
    pub clock: ClockSource,
}

impl WorldConfig {
    /// A world at `level` over one Myri-10G rail on real time, busy waits.
    pub fn new(level: ThreadLevel) -> Self {
        WorldConfig {
            level,
            rails: vec![WireModel::myri_10g()],
            core: CoreConfig::default(),
            thread_safe_drivers: true,
            wait: WaitStrategy::Busy,
            clock: ClockSource::real(),
        }
    }

    /// Replaces the rail models.
    pub fn rails(mut self, rails: Vec<WireModel>) -> Self {
        self.rails = rails;
        self
    }

    /// Replaces the base core configuration.
    pub fn core(mut self, core: CoreConfig) -> Self {
        self.core = core;
        self
    }

    /// Sets the communicators' default waiting strategy.
    pub fn wait(mut self, wait: WaitStrategy) -> Self {
        self.wait = wait;
        self
    }
}

/// An in-process world of communicating ranks.
pub struct World {
    comms: Vec<Comm>,
    /// `ports[i][j]`: the fabric ports rank `i` uses toward rank `j`.
    ports: Vec<Vec<Option<NodePorts>>>,
    clock: ClockSource,
}

impl World {
    /// A two-rank world with defaults (one Myri-10G rail, busy waits).
    pub fn pair(level: ThreadLevel) -> Self {
        Self::with_config(2, WorldConfig::new(level))
    }

    /// A fully connected world of `n` ranks with defaults.
    pub fn clique(n: usize, level: ThreadLevel) -> Self {
        Self::with_config(n, WorldConfig::new(level))
    }

    /// A world of `n` ranks with explicit configuration.
    pub fn with_config(n: usize, config: WorldConfig) -> Self {
        assert!(n >= 2, "a world needs at least two ranks");
        let fabric = Fabric::new(config.clock.clone());
        let ports = fabric.clique(n, &config.rails, config.thread_safe_drivers);

        let mut comms = Vec::with_capacity(n);
        #[allow(clippy::needless_range_loop)] // rank/peer double-index the matrix
        for rank in 0..n {
            let mut builder = CoreBuilder::new(config.core.clone().locking(config.level.locking()));
            // Gate g of rank r reaches peer (g < r ? g : g + 1): dense gate
            // ids with the self-entry skipped.
            let mut peers = Vec::new();
            for peer in 0..n {
                if peer == rank {
                    continue;
                }
                let port = ports[rank][peer]
                    .as_ref()
                    .expect("clique is fully connected");
                builder = builder.add_gate(port.drivers());
                peers.push(peer);
            }
            let core = builder.build();
            comms.push(Comm::new(rank, core, peers, config.wait));
        }
        World {
            comms,
            ports,
            clock: config.clock,
        }
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.comms.len()
    }

    /// The communicator of `rank` (cloneable, thread-safe per its level).
    pub fn comm(&self, rank: usize) -> Comm {
        self.comms[rank].clone()
    }

    /// Convenience for two-rank worlds: both communicators.
    pub fn comm_pair(&self) -> (Comm, Comm) {
        assert_eq!(self.size(), 2, "comm_pair needs a two-rank world");
        (self.comm(0), self.comm(1))
    }

    /// The underlying core of `rank` (for progression-engine wiring).
    pub fn core(&self, rank: usize) -> Arc<CommCore> {
        self.comms[rank].core().clone()
    }

    /// Fabric ports from `rank` toward `peer` (driver counters for
    /// benches); `None` on the diagonal.
    pub fn ports(&self, rank: usize, peer: usize) -> Option<&NodePorts> {
        self.ports[rank][peer].as_ref()
    }

    /// The fabric clock.
    pub fn clock(&self) -> &ClockSource {
        &self.clock
    }

    /// Gate id rank `from` uses to reach `to`.
    pub fn gate_for(&self, from: usize, to: usize) -> GateId {
        assert_ne!(from, to, "no self gate");
        GateId(if to < from { to } else { to - 1 })
    }
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World").field("size", &self.size()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_levels_map_to_locking() {
        assert_eq!(ThreadLevel::Single.locking(), LockingMode::SingleThread);
        assert_eq!(ThreadLevel::Funneled.locking(), LockingMode::Coarse);
        assert_eq!(ThreadLevel::Serialized.locking(), LockingMode::Coarse);
        assert_eq!(ThreadLevel::Multiple.locking(), LockingMode::Fine);
    }

    #[test]
    fn gate_numbering_skips_self() {
        let w = World::clique(3, ThreadLevel::Multiple);
        assert_eq!(w.gate_for(0, 1), GateId(0));
        assert_eq!(w.gate_for(0, 2), GateId(1));
        assert_eq!(w.gate_for(1, 0), GateId(0));
        assert_eq!(w.gate_for(1, 2), GateId(1));
        assert_eq!(w.gate_for(2, 0), GateId(0));
        assert_eq!(w.gate_for(2, 1), GateId(1));
    }

    #[test]
    #[should_panic(expected = "at least two ranks")]
    fn singleton_world_rejected() {
        let _ = World::clique(1, ThreadLevel::Multiple);
    }
}
