//! World construction: ranks wired through the simulated fabric.

use std::sync::Arc;

use nm_core::{CommCore, CoreBuilder, CoreConfig, GateId, LockingMode};
use nm_fabric::{ClockSource, Fabric, NodePorts, WireModel};
use nm_progress::OffloadMode;
use nm_sync::WaitStrategy;

use crate::comm::Comm;

/// MPI thread-support levels (`MPI_THREAD_*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThreadLevel {
    /// Only one thread exists.
    Single,
    /// Multiple threads, but only the main one communicates.
    Funneled,
    /// Multiple threads communicate, never concurrently.
    Serialized,
    /// Any thread communicates at any time (the paper's focus).
    Multiple,
}

impl ThreadLevel {
    /// The locking mode implementing this level.
    pub fn locking(&self) -> LockingMode {
        match self {
            ThreadLevel::Single => LockingMode::SingleThread,
            // One caller at a time: the cheap library-wide lock suffices.
            ThreadLevel::Funneled | ThreadLevel::Serialized => LockingMode::Coarse,
            ThreadLevel::Multiple => LockingMode::Fine,
        }
    }
}

/// An incoherent [`WorldBuilder`] configuration, caught by
/// [`WorldBuilder::validate`] before any core is built.
///
/// These used to surface as panics deep inside `CoreBuilder::build` (or
/// as hangs at the first blocking wait); the builder now rejects them up
/// front with a typed error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// No rail models configured: ranks would have no wires between them.
    NoRails,
    /// `ThreadLevel::Single` with a waiting strategy that can block: with
    /// no locks and no concurrent progression thread, a blocked waiter
    /// can never be signalled.
    SingleThreadBlockingWait(WaitStrategy),
    /// A submission offload mode with a non-thread-safe locking mode:
    /// offloaded work runs on another thread.
    OffloadNeedsThreadSafety(OffloadMode, LockingMode),
    /// `OffloadMode::Tasklet` without a tasklet engine to run the work.
    TaskletOffloadWithoutEngine,
    /// The eager threshold plus protocol headers exceeds a rail's MTU, so
    /// a maximal eager message could never be encoded into one packet.
    EagerExceedsMtu {
        /// Configured eager threshold (payload bytes).
        eager_threshold: usize,
        /// Per-message plus per-packet header bytes added on the wire.
        headers: usize,
        /// Smallest MTU across the configured rails.
        min_mtu: usize,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NoRails => write!(f, "world has no rails"),
            ConfigError::SingleThreadBlockingWait(w) => write!(
                f,
                "ThreadLevel::Single cannot use blocking wait strategy {w:?}: \
                 nothing would ever wake the waiter"
            ),
            ConfigError::OffloadNeedsThreadSafety(o, l) => write!(
                f,
                "offload mode {o:?} runs submission on another thread and \
                 needs a thread-safe locking mode, got {l:?}"
            ),
            ConfigError::TaskletOffloadWithoutEngine => {
                write!(f, "OffloadMode::Tasklet requires a tasklet engine")
            }
            ConfigError::EagerExceedsMtu {
                eager_threshold,
                headers,
                min_mtu,
            } => write!(
                f,
                "eager threshold {eager_threshold} + {headers} header bytes \
                 exceeds the smallest rail MTU {min_mtu}"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Builder for [`World`] construction parameters.
///
/// Validated as a whole by [`WorldBuilder::validate`] /
/// [`World::try_with_config`]: incoherent combinations (blocking waits at
/// `ThreadLevel::Single`, offload without thread safety, eager messages
/// that cannot fit a rail MTU) are rejected with a typed
/// [`ConfigError`] instead of panicking mid-construction.
#[derive(Clone)]
pub struct WorldBuilder {
    /// Thread level (determines the locking mode).
    pub level: ThreadLevel,
    /// One wire model per rail between each pair of ranks.
    pub rails: Vec<WireModel>,
    /// Base core configuration (locking is overridden by `level`).
    pub core: CoreConfig,
    /// Whether drivers are thread-safe (MX-style drivers are not).
    pub thread_safe_drivers: bool,
    /// Default waiting strategy of the communicators.
    pub wait: WaitStrategy,
    /// Clock the fabric stamps packets with.
    pub clock: ClockSource,
}

impl WorldBuilder {
    /// A world at `level` over one Myri-10G rail on real time, busy waits.
    pub fn new(level: ThreadLevel) -> Self {
        WorldBuilder {
            level,
            rails: vec![WireModel::myri_10g()],
            core: CoreConfig::default(),
            thread_safe_drivers: true,
            wait: WaitStrategy::Busy,
            clock: ClockSource::real(),
        }
    }

    /// Replaces the rail models.
    pub fn rails(mut self, rails: Vec<WireModel>) -> Self {
        self.rails = rails;
        self
    }

    /// Replaces the base core configuration.
    pub fn core(mut self, core: CoreConfig) -> Self {
        self.core = core;
        self
    }

    /// Sets the communicators' default waiting strategy.
    pub fn wait(mut self, wait: WaitStrategy) -> Self {
        self.wait = wait;
        self
    }

    /// Sets the fabric clock source.
    pub fn clock(mut self, clock: ClockSource) -> Self {
        self.clock = clock;
        self
    }

    /// Sets driver thread safety (MX-style drivers are not thread-safe).
    pub fn thread_safe_drivers(mut self, safe: bool) -> Self {
        self.thread_safe_drivers = safe;
        self
    }

    /// Checks the configuration as a whole for coherence.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.rails.is_empty() {
            return Err(ConfigError::NoRails);
        }
        if self.level == ThreadLevel::Single && self.wait.may_block() {
            return Err(ConfigError::SingleThreadBlockingWait(self.wait));
        }
        let locking = self.level.locking();
        if self.core.offload != OffloadMode::Inline && !locking.thread_safe() {
            return Err(ConfigError::OffloadNeedsThreadSafety(
                self.core.offload,
                locking,
            ));
        }
        if self.core.offload == OffloadMode::Tasklet && self.core.tasklet_engine.is_none() {
            return Err(ConfigError::TaskletOffloadWithoutEngine);
        }
        let headers = nm_core::wire::ENTRY_HEADER
            + nm_core::wire::PACKET_HEADER
            + nm_core::wire::FRAME_HEADER;
        let min_mtu = self
            .rails
            .iter()
            .map(|r| r.mtu)
            .min()
            .expect("rails checked non-empty above");
        if self.core.eager_threshold + headers > min_mtu {
            return Err(ConfigError::EagerExceedsMtu {
                eager_threshold: self.core.eager_threshold,
                headers,
                min_mtu,
            });
        }
        Ok(())
    }

    /// Validates, then builds a world of `n` ranks.
    pub fn build(self, n: usize) -> Result<World, ConfigError> {
        World::try_with_config(n, self)
    }
}

/// An in-process world of communicating ranks.
pub struct World {
    comms: Vec<Comm>,
    /// `ports[i][j]`: the fabric ports rank `i` uses toward rank `j`.
    ports: Vec<Vec<Option<NodePorts>>>,
    clock: ClockSource,
}

impl World {
    /// A two-rank world with defaults (one Myri-10G rail, busy waits).
    pub fn pair(level: ThreadLevel) -> Self {
        Self::with_config(2, WorldBuilder::new(level))
    }

    /// A fully connected world of `n` ranks with defaults.
    pub fn clique(n: usize, level: ThreadLevel) -> Self {
        Self::with_config(n, WorldBuilder::new(level))
    }

    /// A world of `n` ranks with explicit configuration; panics on an
    /// invalid configuration (see [`World::try_with_config`]).
    pub fn with_config(n: usize, config: WorldBuilder) -> Self {
        match Self::try_with_config(n, config) {
            Ok(w) => w,
            Err(e) => panic!("invalid world configuration: {e}"),
        }
    }

    /// A world of `n` ranks with explicit, validated configuration.
    pub fn try_with_config(n: usize, config: WorldBuilder) -> Result<Self, ConfigError> {
        assert!(n >= 2, "a world needs at least two ranks");
        config.validate()?;

        // Route the tracer's clock through the fabric's: manual (sim)
        // clocks make traces bit-deterministic, real clocks stay real.
        if let ClockSource::Manual(ns) = &config.clock {
            nm_trace::install_virtual_clock(Arc::clone(ns));
        } else {
            nm_trace::install_real_clock();
        }

        let fabric = Fabric::new(config.clock.clone());
        let ports = fabric.clique(n, &config.rails, config.thread_safe_drivers);

        let mut comms = Vec::with_capacity(n);
        #[allow(clippy::needless_range_loop)] // rank/peer double-index the matrix
        for rank in 0..n {
            let mut builder = CoreBuilder::new(config.core.clone().locking(config.level.locking()));
            // Gate g of rank r reaches peer (g < r ? g : g + 1): dense gate
            // ids with the self-entry skipped.
            let mut peers = Vec::new();
            for peer in 0..n {
                if peer == rank {
                    continue;
                }
                let port = ports[rank][peer]
                    .as_ref()
                    .expect("clique is fully connected");
                builder = builder.add_gate(port.drivers());
                peers.push(peer);
            }
            let core = builder.build();
            comms.push(Comm::new(rank, core, peers, config.wait));
        }
        Ok(World {
            comms,
            ports,
            clock: config.clock,
        })
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.comms.len()
    }

    /// The communicator of `rank` (cloneable, thread-safe per its level).
    pub fn comm(&self, rank: usize) -> Comm {
        self.comms[rank].clone()
    }

    /// Convenience for two-rank worlds: both communicators.
    pub fn comm_pair(&self) -> (Comm, Comm) {
        assert_eq!(self.size(), 2, "comm_pair needs a two-rank world");
        (self.comm(0), self.comm(1))
    }

    /// The underlying core of `rank` (for progression-engine wiring).
    pub fn core(&self, rank: usize) -> Arc<CommCore> {
        self.comms[rank].core().clone()
    }

    /// Fabric ports from `rank` toward `peer` (driver counters for
    /// benches); `None` on the diagonal.
    pub fn ports(&self, rank: usize, peer: usize) -> Option<&NodePorts> {
        self.ports[rank][peer].as_ref()
    }

    /// The fabric clock.
    pub fn clock(&self) -> &ClockSource {
        &self.clock
    }

    /// Gate id rank `from` uses to reach `to`.
    pub fn gate_for(&self, from: usize, to: usize) -> GateId {
        assert_ne!(from, to, "no self gate");
        GateId(if to < from { to } else { to - 1 })
    }
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World").field("size", &self.size()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_levels_map_to_locking() {
        assert_eq!(ThreadLevel::Single.locking(), LockingMode::SingleThread);
        assert_eq!(ThreadLevel::Funneled.locking(), LockingMode::Coarse);
        assert_eq!(ThreadLevel::Serialized.locking(), LockingMode::Coarse);
        assert_eq!(ThreadLevel::Multiple.locking(), LockingMode::Fine);
    }

    #[test]
    fn gate_numbering_skips_self() {
        let w = World::clique(3, ThreadLevel::Multiple);
        assert_eq!(w.gate_for(0, 1), GateId(0));
        assert_eq!(w.gate_for(0, 2), GateId(1));
        assert_eq!(w.gate_for(1, 0), GateId(0));
        assert_eq!(w.gate_for(1, 2), GateId(1));
        assert_eq!(w.gate_for(2, 0), GateId(0));
        assert_eq!(w.gate_for(2, 1), GateId(1));
    }

    #[test]
    #[should_panic(expected = "at least two ranks")]
    fn singleton_world_rejected() {
        let _ = World::clique(1, ThreadLevel::Multiple);
    }

    #[test]
    fn default_config_validates() {
        for level in [
            ThreadLevel::Single,
            ThreadLevel::Funneled,
            ThreadLevel::Serialized,
            ThreadLevel::Multiple,
        ] {
            assert_eq!(WorldBuilder::new(level).validate(), Ok(()));
        }
    }

    #[test]
    fn no_rails_rejected() {
        let b = WorldBuilder::new(ThreadLevel::Multiple).rails(vec![]);
        assert_eq!(b.validate(), Err(ConfigError::NoRails));
        assert!(World::try_with_config(2, b).is_err());
    }

    #[test]
    fn single_thread_blocking_wait_rejected() {
        let b = WorldBuilder::new(ThreadLevel::Single).wait(WaitStrategy::Passive);
        assert_eq!(
            b.validate(),
            Err(ConfigError::SingleThreadBlockingWait(WaitStrategy::Passive))
        );
        // Busy waits at Single stay valid.
        assert_eq!(WorldBuilder::new(ThreadLevel::Single).validate(), Ok(()));
    }

    #[test]
    fn offload_without_thread_safety_rejected() {
        let b = WorldBuilder::new(ThreadLevel::Single)
            .core(CoreConfig::default().offload(OffloadMode::IdleCore));
        assert_eq!(
            b.validate(),
            Err(ConfigError::OffloadNeedsThreadSafety(
                OffloadMode::IdleCore,
                LockingMode::SingleThread
            ))
        );
    }

    #[test]
    fn tasklet_offload_without_engine_rejected() {
        let b = WorldBuilder::new(ThreadLevel::Multiple)
            .core(CoreConfig::default().offload(OffloadMode::Tasklet));
        assert_eq!(b.validate(), Err(ConfigError::TaskletOffloadWithoutEngine));
    }

    #[test]
    fn eager_threshold_must_fit_mtu() {
        let rail = WireModel::myri_10g();
        let mtu = rail.mtu;
        let b = WorldBuilder::new(ThreadLevel::Multiple)
            .rails(vec![rail])
            .core(CoreConfig::default().eager_threshold(mtu));
        match b.validate() {
            Err(ConfigError::EagerExceedsMtu { min_mtu, .. }) => assert_eq!(min_mtu, mtu),
            other => panic!("expected EagerExceedsMtu, got {other:?}"),
        }
    }

    #[test]
    fn invalid_config_panics_with_typed_message() {
        let b = WorldBuilder::new(ThreadLevel::Single).wait(WaitStrategy::Passive);
        let err =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| World::with_config(2, b)))
                .unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .expect("panic carries a String");
        assert!(msg.contains("invalid world configuration"), "{msg}");
    }
}
