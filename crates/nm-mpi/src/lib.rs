//! Mad-MPI: a thin MPI-flavoured façade over `nm-core`.
//!
//! NewMadeleine "implements both a specific API and a MPI interface called
//! Mad-MPI". This crate is that second interface: ranks, communicators,
//! tags, and the MPI thread levels, mapped onto the core's locking modes:
//!
//! | MPI thread level | [`LockingMode`] |
//! |------------------|-----------------|
//! | `Single`         | `SingleThread` (no locks, one thread enforced) |
//! | `Funneled` / `Serialized` | `Coarse` (one caller at a time anyway) |
//! | `Multiple`       | `Fine` (concurrent flows in parallel) |
//!
//! Worlds are in-process: every rank is a communication core connected to
//! its peers through the simulated fabric.
//!
//! ```
//! use nm_mpi::{World, ThreadLevel};
//!
//! let world = World::pair(ThreadLevel::Multiple);
//! let (a, b) = world.comm_pair();
//! let echo = std::thread::spawn(move || {
//!     let m = b.recv(1).unwrap();
//!     b.send(1, &m).unwrap();
//! });
//! a.send(1, b"ping").unwrap();
//! assert_eq!(a.recv(1).unwrap(), b"ping");
//! echo.join().unwrap();
//! ```

#![warn(missing_docs)]

mod coll;
mod comm;
mod world;

pub use comm::{Comm, MpiError};
pub use world::{ThreadLevel, World, WorldConfig};
