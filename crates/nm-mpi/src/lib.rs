//! Mad-MPI: a thin MPI-flavoured façade over `nm-core`.
//!
//! NewMadeleine "implements both a specific API and a MPI interface called
//! Mad-MPI". This crate is that second interface: ranks, communicators,
//! tags, and the MPI thread levels, mapped onto the core's locking modes:
//!
//! | MPI thread level | [`LockingMode`] |
//! |------------------|-----------------|
//! | `Single`         | `SingleThread` (no locks, one thread enforced) |
//! | `Funneled` / `Serialized` | `Coarse` (one caller at a time anyway) |
//! | `Multiple`       | `Fine` (concurrent flows in parallel) |
//!
//! Worlds are in-process: every rank is a communication core connected to
//! its peers through the simulated fabric. Point-to-point operations go
//! through per-peer [`Endpoint`]s (see [`Comm::peer`]):
//!
//! ```
//! use nm_mpi::{World, ThreadLevel};
//!
//! let world = World::pair(ThreadLevel::Multiple);
//! let (a, b) = world.comm_pair();
//! let to_b = a.sole_peer().unwrap();
//! let to_a = b.sole_peer().unwrap();
//! let echo = std::thread::spawn(move || {
//!     let m = to_a.recv(1).unwrap();
//!     to_a.send(1, &m).unwrap();
//! });
//! to_b.send(1, b"ping").unwrap();
//! assert_eq!(to_b.recv(1).unwrap(), b"ping");
//! echo.join().unwrap();
//! ```
//!
//! Beyond blocking and `isend`/`irecv`+`wait`, endpoints expose an async
//! facade — [`Endpoint::send_async`]/[`Endpoint::recv_async`] return
//! futures whose wakers register with the progress engine, and [`exec`]
//! provides minimal block-on executors — so one thread can multiplex
//! thousands of outstanding operations (see `docs/COMPLETION.md`).

#![warn(missing_docs)]
#![deny(deprecated)]

mod coll;
mod comm;
pub mod exec;
mod future;
mod world;

pub use comm::{Comm, Endpoint, MpiError};
pub use future::{RecvFuture, SendFuture};
pub use world::{ConfigError, ThreadLevel, World, WorldBuilder};
