//! Minimal executors for the async facade — enough to drive
//! [`SendFuture`](crate::SendFuture)/[`RecvFuture`](crate::RecvFuture)
//! without an async runtime dependency.
//!
//! * [`block_on`] — parks the calling thread between polls; correct when
//!   something else drives progression (a
//!   [`ProgressionThread`](nm_progress::ProgressionThread), scheduler
//!   hooks, another rank's busy wait).
//! * [`block_on_with`] — never parks: calls a poll hook (typically
//!   `|| { core.progress(); }`) between polls. This is the
//!   deterministic, self-driving variant used by the stack tests.
//! * [`join_all`] — awaits a batch of futures; with thousands of
//!   outstanding operations this is the "server multiplexing 10k+
//!   requests on a couple of cores" shape from the completion-object
//!   experiment (`nm-sim`'s `cq_completion_scaling`).

use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};
use std::thread::Thread;

/// Wakes [`block_on`]'s parked thread.
struct ThreadWaker {
    thread: Thread,
    notified: AtomicBool,
}

impl Wake for ThreadWaker {
    fn wake(self: Arc<Self>) {
        // Set the token before unparking: the parked side re-checks it,
        // so a wake between its check and its park is never lost
        // (unpark also grants a park permit, covering the tail race).
        self.notified.store(true, Ordering::SeqCst);
        self.thread.unpark();
    }
}

/// Runs `fut` to completion, parking this thread while it is pending.
///
/// Progression must come from elsewhere — a pending future never polls
/// the library, and a parked thread cannot. Pair with a
/// [`ProgressionThread`](nm_progress::ProgressionThread) or use
/// [`block_on_with`] to self-drive.
pub fn block_on<F: Future>(fut: F) -> F::Output {
    let mut fut = std::pin::pin!(fut);
    let state = Arc::new(ThreadWaker {
        thread: std::thread::current(),
        notified: AtomicBool::new(false),
    });
    let waker = Waker::from(Arc::clone(&state));
    let mut cx = Context::from_waker(&waker);
    loop {
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(out) => return out,
            Poll::Pending => {
                while !state.notified.swap(false, Ordering::SeqCst) {
                    std::thread::park();
                }
            }
        }
    }
}

/// A waker that does nothing: [`block_on_with`] re-polls unconditionally
/// after its hook, so wake-ups carry no information for it.
struct NoopWaker;

impl Wake for NoopWaker {
    fn wake(self: Arc<Self>) {}
}

/// Runs `fut` to completion, invoking `hook` every time it is pending.
///
/// The hook is where progression happens (e.g.
/// `|| { core.progress(); }`), making the executor self-driving and —
/// on a deterministic substrate — bit-reproducible: no parking, no
/// timing dependence.
pub fn block_on_with<F: Future>(fut: F, mut hook: impl FnMut()) -> F::Output {
    let mut fut = std::pin::pin!(fut);
    let waker = Waker::from(Arc::new(NoopWaker));
    let mut cx = Context::from_waker(&waker);
    loop {
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(out) => return out,
            Poll::Pending => hook(),
        }
    }
}

/// Future combining a batch of futures; resolves to their outputs in
/// input order once all are complete.
///
/// Polls only still-pending members on each wake (completed outputs are
/// stored), so N outstanding operations cost O(pending) per poll.
pub struct JoinAll<F: Future + Unpin> {
    futs: Vec<Option<F>>,
    outs: Vec<Option<F::Output>>,
}

// Members are boxed behind Vecs and never pinned through; the combinator
// is freely movable even when outputs are not Unpin.
impl<F: Future + Unpin> Unpin for JoinAll<F> {}

/// Awaits every future in `futs`; see [`JoinAll`].
pub fn join_all<F: Future + Unpin>(futs: Vec<F>) -> JoinAll<F> {
    let n = futs.len();
    JoinAll {
        futs: futs.into_iter().map(Some).collect(),
        outs: (0..n).map(|_| None).collect(),
    }
}

impl<F: Future + Unpin> Future for JoinAll<F> {
    type Output = Vec<F::Output>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let mut pending = 0;
        for (slot, out) in this.futs.iter_mut().zip(this.outs.iter_mut()) {
            if let Some(f) = slot {
                match Pin::new(f).poll(cx) {
                    Poll::Ready(v) => {
                        *out = Some(v);
                        *slot = None;
                    }
                    Poll::Pending => pending += 1,
                }
            }
        }
        if pending > 0 {
            return Poll::Pending;
        }
        Poll::Ready(
            this.outs
                .iter_mut()
                .map(|o| o.take().expect("all members resolved"))
                .collect(),
        )
    }
}
