//! Collective operations over a communicator.
//!
//! Classic algorithms on top of the point-to-point layer: binomial-tree
//! broadcast and reduce, linear gather, and a tree allreduce. Like MPI,
//! collectives are *ordered*: every rank must invoke the same collectives
//! in the same order on a given world, and at most one thread per rank
//! may be inside a collective at a time. Tags from the reserved internal
//! space (`u64::MAX - 255 ..= u64::MAX`) are used; back-to-back
//! collectives stay separated by the library's per-tag FIFO ordering.

use crate::comm::{Comm, MpiError};

/// Base of the reserved collective tag space.
const COLL_BASE: u64 = u64::MAX - 0xFF;

const TAG_BCAST: u64 = COLL_BASE;
const TAG_REDUCE: u64 = COLL_BASE + 1;
const TAG_GATHER: u64 = COLL_BASE + 2;
const TAG_SCATTER: u64 = COLL_BASE + 3;

/// Virtual rank relative to `root` (so any root uses the same tree).
fn vrank(rank: usize, root: usize, n: usize) -> usize {
    (rank + n - root) % n
}

fn unvrank(v: usize, root: usize, n: usize) -> usize {
    (v + root) % n
}

impl Comm {
    /// Broadcasts `data` from `root` to every rank (binomial tree);
    /// returns the broadcast payload on every rank.
    pub fn bcast(&self, root: usize, data: &[u8]) -> Result<Vec<u8>, MpiError> {
        let n = self.size();
        if root >= n {
            return Err(MpiError::InvalidRank(root));
        }
        let me = vrank(self.rank(), root, n);
        let mut payload = if me == 0 { data.to_vec() } else { Vec::new() };

        // Binomial tree: the parent is `me` with its lowest set bit
        // cleared.
        if me != 0 {
            let parent = unvrank(me & (me - 1), root, n);
            payload = self.peer(parent)?.recv(TAG_BCAST)?;
        }
        // Forward to children: me + 2^k for k above me's lowest set bit.
        let lowest = if me == 0 {
            n.next_power_of_two()
        } else {
            me & me.wrapping_neg()
        };
        let mut step = 1;
        while step < lowest && me + step < n {
            let child = unvrank(me + step, root, n);
            self.peer(child)?.send(TAG_BCAST, &payload)?;
            step <<= 1;
        }
        Ok(payload)
    }

    /// Reduces element-wise sums of `f64` vectors to `root` (binomial
    /// tree). Returns `Some(total)` on the root, `None` elsewhere.
    ///
    /// # Panics
    /// Panics if ranks contribute vectors of different lengths.
    pub fn reduce_sum_f64(
        &self,
        root: usize,
        contribution: &[f64],
    ) -> Result<Option<Vec<f64>>, MpiError> {
        let n = self.size();
        if root >= n {
            return Err(MpiError::InvalidRank(root));
        }
        let me = vrank(self.rank(), root, n);
        let mut acc = contribution.to_vec();

        // Gather partial sums from children, then send to parent.
        let mut step = 1;
        while step < n {
            if me & step != 0 {
                // Send the accumulator to the parent and stop.
                let parent = unvrank(me & !step, root, n);
                let bytes: Vec<u8> = acc.iter().flat_map(|v| v.to_le_bytes()).collect();
                self.peer(parent)?.send(TAG_REDUCE, &bytes)?;
                return Ok(None);
            }
            if me + step < n {
                let child = unvrank(me + step, root, n);
                let bytes = self.peer(child)?.recv(TAG_REDUCE)?;
                assert_eq!(
                    bytes.len(),
                    acc.len() * 8,
                    "reduce contributions must have equal lengths"
                );
                for (i, chunk) in bytes.chunks_exact(8).enumerate() {
                    acc[i] += f64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
                }
            }
            step <<= 1;
        }
        Ok(Some(acc))
    }

    /// Element-wise sum reduced to every rank: reduce to rank 0, then
    /// broadcast.
    pub fn allreduce_sum_f64(&self, contribution: &[f64]) -> Result<Vec<f64>, MpiError> {
        let reduced = self.reduce_sum_f64(0, contribution)?;
        let bytes = match reduced {
            Some(total) => {
                let b: Vec<u8> = total.iter().flat_map(|v| v.to_le_bytes()).collect();
                self.bcast(0, &b)?
            }
            None => self.bcast(0, &[])?,
        };
        Ok(bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect())
    }

    /// Gathers every rank's payload at `root` (linear). Returns
    /// `Some(payloads)` indexed by rank on the root, `None` elsewhere.
    pub fn gather(&self, root: usize, data: &[u8]) -> Result<Option<Vec<Vec<u8>>>, MpiError> {
        let n = self.size();
        if root >= n {
            return Err(MpiError::InvalidRank(root));
        }
        if self.rank() == root {
            let mut out: Vec<Vec<u8>> = vec![Vec::new(); n];
            out[root] = data.to_vec();
            for peer in (0..n).filter(|&p| p != root) {
                out[peer] = self.peer(peer)?.recv(TAG_GATHER)?;
            }
            Ok(Some(out))
        } else {
            self.peer(root)?.send(TAG_GATHER, data)?;
            Ok(None)
        }
    }

    /// Scatters `chunks[i]` from `root` to rank `i` (linear); returns
    /// this rank's chunk.
    ///
    /// # Panics
    /// Panics on the root if `chunks.len() != self.size()`.
    pub fn scatter(&self, root: usize, chunks: Option<&[Vec<u8>]>) -> Result<Vec<u8>, MpiError> {
        let n = self.size();
        if root >= n {
            return Err(MpiError::InvalidRank(root));
        }
        if self.rank() == root {
            let chunks = chunks.expect("root must supply the chunks");
            assert_eq!(chunks.len(), n, "one chunk per rank required");
            for peer in (0..n).filter(|&p| p != root) {
                self.peer(peer)?.send(TAG_SCATTER, &chunks[peer])?;
            }
            Ok(chunks[root].clone())
        } else {
            self.peer(root)?.recv(TAG_SCATTER)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vrank_round_trips() {
        for n in 1..6 {
            for root in 0..n {
                for r in 0..n {
                    assert_eq!(unvrank(vrank(r, root, n), root, n), r);
                }
            }
        }
    }
}
