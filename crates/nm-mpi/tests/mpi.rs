//! Integration tests of the Mad-MPI façade.

use std::sync::Arc;

use nm_mpi::{MpiError, ThreadLevel, World, WorldBuilder};
use nm_sync::WaitStrategy;

#[test]
fn pair_send_recv() {
    let world = World::pair(ThreadLevel::Multiple);
    let (a, b) = world.comm_pair();
    let to_a = b.sole_peer().unwrap();
    let echo = std::thread::spawn(move || {
        let m = to_a.recv(1).unwrap();
        to_a.send(1, &m).unwrap();
    });
    let to_b = a.sole_peer().unwrap();
    to_b.send(1, b"ping").unwrap();
    assert_eq!(to_b.recv(1).unwrap(), b"ping");
    echo.join().unwrap();
}

#[test]
fn sendrecv_pingpong() {
    let world = World::pair(ThreadLevel::Multiple);
    let (a, b) = world.comm_pair();
    let echo = std::thread::spawn(move || {
        let ep = b.peer(0).unwrap();
        for _ in 0..20 {
            let m = ep.recv(0).unwrap();
            ep.send(0, &m).unwrap();
        }
    });
    let ep = a.peer(1).unwrap();
    for i in 0..20 {
        let msg = vec![i as u8; 64];
        let back = ep.sendrecv(0, &msg).unwrap();
        assert_eq!(back, msg);
    }
    echo.join().unwrap();
}

#[test]
fn nonblocking_requests() {
    let world = World::pair(ThreadLevel::Multiple);
    let (a, b) = world.comm_pair();
    let r = b.sole_peer().unwrap().irecv(3).unwrap();
    let s = a.sole_peer().unwrap().isend(3, b"deferred").unwrap();
    a.wait(&s).unwrap();
    b.wait(&r).unwrap();
    assert_eq!(
        r.take_data().unwrap(),
        bytes::Bytes::from_static(b"deferred")
    );
}

#[test]
fn endpoint_identity() {
    let world = World::clique(3, ThreadLevel::Multiple);
    let comm = world.comm(1);
    let ep = comm.peer(2).unwrap();
    assert_eq!(ep.rank(), 1);
    assert_eq!(ep.peer(), 2);
    assert_eq!(ep.gate(), world.gate_for(1, 2));
    assert!(matches!(comm.peer(1), Err(MpiError::InvalidRank(1))));
    assert!(matches!(comm.peer(9), Err(MpiError::InvalidRank(9))));
    // sole_peer only exists in two-rank worlds.
    assert!(comm.sole_peer().is_err());
    let peers = comm.peers();
    assert_eq!(
        peers.iter().map(|e| e.peer()).collect::<Vec<_>>(),
        vec![0, 2]
    );
}

#[test]
fn three_rank_ring() {
    let world = Arc::new(World::clique(3, ThreadLevel::Multiple));
    let mut handles = Vec::new();
    for rank in 0..3 {
        let world = Arc::clone(&world);
        handles.push(std::thread::spawn(move || {
            let comm = world.comm(rank);
            let next = comm.peer((rank + 1) % 3).unwrap();
            let prev = comm.peer((rank + 2) % 3).unwrap();
            // Send own rank around the ring twice.
            let mut token = vec![rank as u8];
            for _ in 0..2 {
                next.send(0, &token).unwrap();
                token = prev.recv(0).unwrap();
            }
            // After two hops the token came from prev's prev = next.
            assert_eq!(token, vec![((rank + 1) % 3) as u8]);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn barrier_synchronizes_clique() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let world = Arc::new(World::clique(3, ThreadLevel::Multiple));
    let phase = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();
    for rank in 0..3 {
        let world = Arc::clone(&world);
        let phase = Arc::clone(&phase);
        handles.push(std::thread::spawn(move || {
            let comm = world.comm(rank);
            phase.fetch_add(1, Ordering::SeqCst);
            comm.barrier().unwrap();
            // Everyone must have entered before anyone leaves.
            assert_eq!(phase.load(Ordering::SeqCst), 3);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn large_message_uses_rendezvous() {
    let world = World::pair(ThreadLevel::Multiple);
    let (a, b) = world.comm_pair();
    let big = vec![0x5Au8; 512 * 1024];
    let expected = big.clone();
    let echo = std::thread::spawn(move || {
        let m = b.sole_peer().unwrap().recv(9).unwrap();
        assert_eq!(m.len(), 512 * 1024);
        m
    });
    a.sole_peer().unwrap().send(9, &big).unwrap();
    let got = echo.join().unwrap();
    assert_eq!(got, expected);
    assert!(a.core().stats().rdv_started.get() >= 1);
}

#[test]
fn invalid_and_self_rank_rejected() {
    let world = World::pair(ThreadLevel::Multiple);
    let (a, _b) = world.comm_pair();
    assert!(matches!(a.peer(0), Err(MpiError::InvalidRank(0))));
    assert!(matches!(a.peer(7), Err(MpiError::InvalidRank(7))));
}

#[test]
fn funneled_level_uses_coarse_locking() {
    let world = World::pair(ThreadLevel::Funneled);
    let (a, b) = world.comm_pair();
    let echo = std::thread::spawn(move || {
        let ep = b.sole_peer().unwrap();
        let m = ep.recv(0).unwrap();
        ep.send(0, &m).unwrap();
    });
    let ep = a.sole_peer().unwrap();
    ep.send(0, b"coarse").unwrap();
    assert_eq!(ep.recv(0).unwrap(), b"coarse");
    echo.join().unwrap();
    // The global lock is actually exercised.
    assert!(a.core().lock_policy().global_stats().acquisitions() > 0);
}

#[test]
fn wait_strategy_override() {
    use nm_progress::{IdlePolicy, ProgressEngine, ProgressionThread};

    let world = World::with_config(
        2,
        WorldBuilder::new(ThreadLevel::Multiple).wait(WaitStrategy::Busy),
    );
    let (a, b) = world.comm_pair();
    let a2 = a.with_wait_strategy(WaitStrategy::fixed_spin_default());
    assert_eq!(a2.wait_strategy(), WaitStrategy::fixed_spin_default());
    assert_eq!(a.wait_strategy(), WaitStrategy::Busy, "original unchanged");
    // Endpoints inherit the communicator's strategy and can override it.
    let ep = a2.sole_peer().unwrap();
    assert_eq!(ep.wait_strategy(), WaitStrategy::fixed_spin_default());
    assert_eq!(
        ep.with_wait_strategy(WaitStrategy::Busy).wait_strategy(),
        WaitStrategy::Busy
    );
    // Fixed spin falls back to blocking once the 5 µs window expires, so —
    // exactly as §3.3 prescribes — background progression must exist for
    // the blocked waiter's own requests to complete.
    let engine = Arc::new(ProgressEngine::new());
    engine.register(Arc::clone(a.core()) as _);
    engine.register(Arc::clone(b.core()) as _);
    let pt = ProgressionThread::spawn(Arc::clone(&engine), None, IdlePolicy::Yield);

    let echo = std::thread::spawn(move || {
        let ep = b.sole_peer().unwrap();
        let m = ep.recv(0).unwrap();
        ep.send(0, &m).unwrap();
    });
    ep.send(0, b"spin").unwrap();
    assert_eq!(ep.recv(0).unwrap(), b"spin");
    echo.join().unwrap();
    pt.stop();
}

#[test]
fn thread_multiple_concurrent_comms() {
    let world = World::pair(ThreadLevel::Multiple);
    let (a, b) = world.comm_pair();
    let mut handles = Vec::new();
    for t in 0..3u64 {
        // Endpoints are cheap clones: one per thread.
        let to_b = a.sole_peer().unwrap();
        handles.push(std::thread::spawn(move || {
            for i in 0..30 {
                to_b.send(t, format!("t{t}m{i}").as_bytes()).unwrap();
            }
        }));
        let to_a = b.sole_peer().unwrap();
        handles.push(std::thread::spawn(move || {
            for i in 0..30 {
                let m = to_a.recv(t).unwrap();
                assert_eq!(m, format!("t{t}m{i}").as_bytes());
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

fn spawn_world<F, R>(n: usize, f: F) -> Vec<R>
where
    F: Fn(nm_mpi::Comm) -> R + Send + Sync + 'static,
    R: Send + 'static,
{
    let world = Arc::new(World::clique(n, ThreadLevel::Multiple));
    let f = Arc::new(f);
    let handles: Vec<_> = (0..n)
        .map(|rank| {
            let world = Arc::clone(&world);
            let f = Arc::clone(&f);
            std::thread::spawn(move || f(world.comm(rank)))
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

#[test]
fn bcast_from_every_root() {
    for root in 0..3 {
        let results = spawn_world(3, move |comm| {
            let data = if comm.rank() == root {
                format!("from {root}").into_bytes()
            } else {
                Vec::new()
            };
            comm.bcast(root, &data).unwrap()
        });
        for r in results {
            assert_eq!(r, format!("from {root}").into_bytes());
        }
    }
}

#[test]
fn bcast_four_ranks_binomial() {
    let results = spawn_world(4, |comm| comm.bcast(0, b"tree").unwrap());
    assert!(results.iter().all(|r| r == b"tree"));
}

#[test]
fn reduce_sums_to_root() {
    let results = spawn_world(3, |comm| {
        let mine = vec![comm.rank() as f64, 10.0];
        comm.reduce_sum_f64(0, &mine).unwrap()
    });
    // Only rank 0 gets the total: 0+1+2 = 3, 10*3 = 30.
    assert_eq!(results[0], Some(vec![3.0, 30.0]));
    assert_eq!(results[1], None);
    assert_eq!(results[2], None);
}

#[test]
fn allreduce_gives_everyone_the_sum() {
    let results = spawn_world(4, |comm| {
        comm.allreduce_sum_f64(&[1.0, comm.rank() as f64]).unwrap()
    });
    for r in results {
        assert_eq!(r, vec![4.0, 6.0]); // 4 ranks; 0+1+2+3
    }
}

#[test]
fn gather_collects_in_rank_order() {
    let results = spawn_world(3, |comm| comm.gather(2, &[comm.rank() as u8; 2]).unwrap());
    assert!(results[0].is_none());
    assert!(results[1].is_none());
    let gathered = results[2].as_ref().unwrap();
    assert_eq!(gathered[0], vec![0, 0]);
    assert_eq!(gathered[1], vec![1, 1]);
    assert_eq!(gathered[2], vec![2, 2]);
}

#[test]
fn scatter_distributes_chunks() {
    let results = spawn_world(3, |comm| {
        let chunks: Option<Vec<Vec<u8>>> =
            (comm.rank() == 0).then(|| (0..3).map(|i| vec![i as u8 * 11]).collect());
        comm.scatter(0, chunks.as_deref()).unwrap()
    });
    assert_eq!(results[0], vec![0]);
    assert_eq!(results[1], vec![11]);
    assert_eq!(results[2], vec![22]);
}

#[test]
fn back_to_back_collectives_do_not_mix() {
    let results = spawn_world(3, |comm| {
        let a = comm
            .bcast(0, if comm.rank() == 0 { b"first" } else { b"" })
            .unwrap();
        let b = comm
            .bcast(0, if comm.rank() == 0 { b"second" } else { b"" })
            .unwrap();
        let s = comm.allreduce_sum_f64(&[1.0]).unwrap();
        (a, b, s)
    });
    for (a, b, s) in results {
        assert_eq!(a, b"first");
        assert_eq!(b, b"second");
        assert_eq!(s, vec![3.0]);
    }
}

#[test]
fn wildcard_receive_via_facade() {
    let world = World::pair(ThreadLevel::Multiple);
    let (a, b) = world.comm_pair();
    let sender = std::thread::spawn(move || {
        let ep = a.sole_peer().unwrap();
        ep.send(31, b"tagged-31").unwrap();
        ep.send(7, b"tagged-7").unwrap();
    });
    let from_a = b.peer(0).unwrap();
    let (t1, m1) = from_a.recv_any().unwrap();
    let (t2, m2) = from_a.recv_any().unwrap();
    assert_eq!((t1, m1.as_slice()), (31, b"tagged-31".as_slice()));
    assert_eq!((t2, m2.as_slice()), (7, b"tagged-7".as_slice()));
    sender.join().unwrap();
}

#[test]
fn four_rank_all_to_all_stress() {
    // Every rank sends a distinct message to every other rank, twice,
    // with all sixteen threads' traffic interleaving through the cores.
    const ROUNDS: usize = 2;
    let results = spawn_world(4, |comm| {
        let me = comm.rank();
        let peers = comm.peers();
        for round in 0..ROUNDS {
            let mut recvs = Vec::new();
            for ep in &peers {
                recvs.push((ep.peer(), ep.irecv(round as u64).unwrap()));
            }
            for ep in &peers {
                let msg = format!("r{round} {me}->{}", ep.peer());
                ep.send(round as u64, msg.as_bytes()).unwrap();
            }
            for (peer, r) in recvs {
                comm.wait(&r).unwrap();
                let data = r.take_data().unwrap();
                assert_eq!(&data[..], format!("r{round} {peer}->{me}").as_bytes());
            }
            comm.barrier().unwrap();
        }
        me
    });
    assert_eq!(results, vec![0, 1, 2, 3]);
}

#[test]
fn error_display_and_source_round_trip() {
    use std::error::Error as _;
    let e = MpiError::from(nm_core::CommError::Timeout);
    assert_eq!(e.to_string(), nm_core::CommError::Timeout.to_string());
    let src = e.source().expect("Comm errors chain their cause");
    assert_eq!(src.to_string(), nm_core::CommError::Timeout.to_string());
    let chained: Vec<String> = {
        // Walk the chain generically, as error reporters do.
        let mut out = Vec::new();
        let mut cur: Option<&dyn std::error::Error> = Some(&e);
        while let Some(err) = cur {
            out.push(err.to_string());
            cur = err.source();
        }
        out
    };
    assert_eq!(chained.len(), 2, "facade error + wrapped core error");
    assert!(MpiError::InvalidRank(9).source().is_none());
    assert_eq!(MpiError::InvalidRank(9).to_string(), "invalid rank 9");
}

#[test]
fn recv_timeout_expires_without_a_sender() {
    let world = World::pair(ThreadLevel::Multiple);
    let (a, _b) = world.comm_pair();
    let ep = a.sole_peer().unwrap();
    let err = ep
        .recv_timeout(5, std::time::Duration::from_millis(5))
        .unwrap_err();
    assert_eq!(err, MpiError::Comm(nm_core::CommError::Timeout));
    // The timed-out posting was reaped; a later message is not stolen.
    assert_eq!(a.core().pending().posted_recvs, 0);
}

#[test]
fn wait_deadline_passes_when_message_arrives() {
    let world = World::pair(ThreadLevel::Multiple);
    let (a, b) = world.comm_pair();
    let sender = std::thread::spawn(move || {
        b.peer(0).unwrap().send(3, b"beat the clock").unwrap();
    });
    let ep = a.peer(1).unwrap();
    let req = ep.irecv(3).unwrap();
    ep.wait_deadline(&req, std::time::Duration::from_secs(30))
        .unwrap();
    assert_eq!(req.take_data().unwrap().as_ref(), b"beat the clock");
    sender.join().unwrap();
}

#[test]
fn cancel_surfaces_through_the_facade() {
    let world = World::pair(ThreadLevel::Multiple);
    let (a, _b) = world.comm_pair();
    let ep = a.sole_peer().unwrap();
    let req = ep.irecv(77).unwrap();
    assert!(req.cancel());
    assert_eq!(
        a.wait(&req).unwrap_err(),
        MpiError::Comm(nm_core::CommError::Cancelled)
    );
    assert_eq!(a.core().pending().posted_recvs, 0);
}

#[test]
fn async_recv_deadline_resolves_to_timeout() {
    let world = World::pair(ThreadLevel::Multiple);
    let (a, _b) = world.comm_pair();
    let ep = a.sole_peer().unwrap();
    let fut = ep.recv_async_deadline(4, std::time::Duration::from_millis(5));
    // Self-drive progression between polls: the deadline fires from the
    // progress loop and wakes the future through the waker table.
    let core = Arc::clone(a.core());
    let err = nm_mpi::exec::block_on_with(fut, move || {
        core.progress();
    })
    .unwrap_err();
    assert_eq!(err, MpiError::Comm(nm_core::CommError::Timeout));
}

#[test]
fn async_recv_deadline_delivers_when_in_time() {
    let world = World::pair(ThreadLevel::Multiple);
    let (a, b) = world.comm_pair();
    let sender = std::thread::spawn(move || {
        b.peer(0).unwrap().send(6, b"prompt").unwrap();
    });
    let ep = a.peer(1).unwrap();
    let fut = ep.recv_async_deadline(6, std::time::Duration::from_secs(30));
    let core = Arc::clone(a.core());
    let data = nm_mpi::exec::block_on_with(fut, move || {
        core.progress();
    })
    .unwrap();
    assert_eq!(data.as_ref(), b"prompt");
    sender.join().unwrap();
}
