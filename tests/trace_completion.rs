//! Completion-delivery tracing under the deterministic clock: N
//! concurrent async operations (plus one queue-completion and one
//! handler-completion receive) must produce *exact* counts of the
//! completion-surface events — `CompletionDeliver`, `CqPush`/`CqPop`,
//! `HandlerRun`, `WakerRegister`/`WakerWake`.
//!
//! The async batch is driven by the deterministic `block_on_with`
//! executor: poll rounds alternate with explicit `progress()` calls, so
//! the number of register/re-register rounds is fixed by construction,
//! not by scheduling.
//!
//! Single test on purpose: the trace rings are process-global, and a
//! sibling test draining them concurrently would perturb the counts.

#![cfg(feature = "trace")]

use bytes::Bytes;

use nomad::core::{Completion, CompletionQueue, GateId};
use nomad::fabric::{ClockSource, WireModel};
use nomad::mpi::exec::{block_on_with, join_all};
use nomad::mpi::{ThreadLevel, World, WorldBuilder};
use nomad::sync::WaitStrategy;
use nomad::trace::{self, EventId};

const OPS: u64 = 16;

#[test]
fn async_batch_has_exact_completion_event_counts() {
    let config = WorldBuilder::new(ThreadLevel::Multiple)
        .clock(ClockSource::manual())
        .rails(vec![WireModel::ideal()]);
    let world = World::with_config(2, config);
    let (a, b) = world.comm_pair();
    let (to_b, to_a) = (a.sole_peer().unwrap(), b.sole_peer().unwrap());

    trace::reset();

    // --- queue + handler completions through the core API -------------
    let cq = CompletionQueue::new();
    let rq = b
        .core()
        .irecv_with(GateId(0), 100, Completion::queue(&cq))
        .expect("irecv (queue)");
    let handler_ran = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
    let hr = std::sync::Arc::clone(&handler_ran);
    let rh = b
        .core()
        .irecv_with(
            GateId(0),
            101,
            Completion::handler(move |ev| {
                hr.store(ev.id(), std::sync::atomic::Ordering::Release);
            }),
        )
        .expect("irecv (handler)");
    for tag in [100u64, 101] {
        a.core()
            .isend(GateId(0), tag, Bytes::from_static(b"x"))
            .expect("isend");
    }
    a.core().progress();
    b.core().progress();
    let ev = cq.wait(WaitStrategy::Busy);
    assert_eq!(ev.id(), rq.id());
    assert!(rh.is_complete());
    assert_eq!(
        handler_ran.load(std::sync::atomic::Ordering::Acquire),
        rh.id()
    );

    // --- N concurrent async ops over the endpoint facade --------------
    let recvs: Vec<_> = (0..OPS).map(|i| to_a.recv_async(i)).collect();
    let sends: Vec<_> = (0..OPS)
        .map(|i| to_b.send_async(i, b"async payload"))
        .collect();
    let (got, sent) = block_on_with(
        async { (join_all(recvs).await, join_all(sends).await) },
        || {
            a.core().progress();
            b.core().progress();
        },
    );
    assert_eq!(got.len() as u64, OPS);
    for r in got {
        assert_eq!(&r.expect("recv")[..], b"async payload");
    }
    for s in sent {
        s.expect("send");
    }

    let trace = trace::take_trace();
    assert!(trace::enabled());
    assert_eq!(trace.dropped(), 0, "ring wrapped mid-test");

    // Every completed request delivers exactly once: 2 plain-flag sends,
    // 1 queue recv, 1 handler recv, and 2*OPS waker-path async ops.
    assert_eq!(trace.count(EventId::CompletionDeliver), 2 * OPS + 4);
    assert_eq!(trace.count(EventId::CqPush), 1);
    assert_eq!(trace.count(EventId::CqPop), 1);
    assert_eq!(trace.count(EventId::HandlerRun), 1);

    let merged = trace.merged();
    // Delivery paths: b = 0 flag, 1 queue, 2 handler, 3 waker.
    let path = |p: u64| {
        merged
            .iter()
            .filter(|e| e.id == EventId::CompletionDeliver && e.b == p)
            .count() as u64
    };
    assert_eq!(path(0), 2);
    assert_eq!(path(1), 1);
    assert_eq!(path(2), 1);
    assert_eq!(path(3), 2 * OPS);

    // Every async op wakes exactly once at delivery. Eager sends over
    // the ideal wire complete inside `send_async` itself — before the
    // future is first polled — so their wakes find no registration
    // (b = 0) and the futures never register. Receives are pending at
    // the first poll round, register once, and the progress hook then
    // delivers them into an armed waker (b = 1); the second round
    // observes completion. The lockstep executor fixes these counts.
    assert_eq!(trace.count(EventId::WakerWake), 2 * OPS);
    assert_eq!(trace.count(EventId::WakerRegister), OPS);
    let wakes = |found: u64| {
        merged
            .iter()
            .filter(|e| e.id == EventId::WakerWake && e.b == found)
            .count() as u64
    };
    assert_eq!(wakes(1), OPS, "every posted recv woke its armed waker");
    assert_eq!(wakes(0), OPS, "eager sends completed before registration");

    // Deterministic clock: no wall time leaked into any record.
    assert!(merged.iter().all(|e| e.ts == 0), "real clock leaked in");
}
