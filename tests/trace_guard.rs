//! Guard for the *disabled* form of tracing: without the `trace`
//! feature every probe must compile to nothing — no rings, no records,
//! no behavioural difference in the communication path.

#![cfg(not(feature = "trace"))]

use nomad::mpi::{ThreadLevel, World};
use nomad::trace;

#[test]
fn disabled_tracing_records_nothing() {
    assert!(!trace::enabled());

    // A real co-polled pingpong exercises every instrumented layer
    // (sync, core, progress, fabric)...
    let world = World::pair(ThreadLevel::Multiple);
    let (a, b) = world.comm_pair();
    let (to_b, to_a) = (a.sole_peer().unwrap(), b.sole_peer().unwrap());
    let echo = std::thread::spawn(move || {
        for i in 0..64u64 {
            let msg = to_a.recv(i).expect("echo recv");
            to_a.send(i, &msg).expect("echo send");
        }
    });
    for i in 0..64u64 {
        to_b.send(i, b"untraced").expect("send");
        to_b.recv(i).expect("recv");
    }
    echo.join().unwrap();

    // ...and none of it left a record.
    assert!(trace::take_trace().is_empty());
    assert!(trace::snapshot_trace().is_empty());
}

#[test]
fn disabled_tracing_allocates_no_span_ids() {
    // Span ids exist only to label trace events; with tracing off,
    // allocation short-circuits to 0 ("no span"), the wire header
    // carries no span bytes, and requests stay span-free.
    let world = World::pair(ThreadLevel::Multiple);
    let (a, b) = world.comm_pair();
    let (to_b, to_a) = (a.sole_peer().unwrap(), b.sole_peer().unwrap());
    let r = to_a.irecv(9).expect("irecv");
    let s = to_b.isend(9, b"spanless").expect("isend");
    assert_eq!(s.span(), 0, "send request must carry no span");
    assert_eq!(r.span(), 0, "recv request must carry no span");
    while !r.is_complete() {
        a.core().progress();
        b.core().progress();
    }
    assert!(trace::take_trace().is_empty());
}

#[test]
fn disabled_emit_is_a_no_op() {
    // `emit` is an `#[inline(always)]` empty function: a million calls
    // allocate no ring and retain nothing.
    for i in 0..1_000_000u64 {
        trace::emit(trace::EventId::LockAcquire, i, 0);
    }
    let t = trace::take_trace();
    assert!(t.is_empty());
    assert_eq!(t.dropped(), 0);
    assert!(t.threads.is_empty(), "no ring should even be registered");
}
