//! The async facade end to end: `send_async`/`recv_async` futures over
//! real worlds, driven by both executors — the deterministic
//! `block_on_with` (self-progressing, single thread) and the parking
//! `block_on` (progression thread wakes the executor through the waker
//! table).

use std::sync::Arc;

use nomad::mpi::exec::{block_on, block_on_with, join_all};
use nomad::mpi::{ThreadLevel, World};
use nomad::progress::{IdlePolicy, ProgressEngine, ProgressionThread};

/// One thread multiplexes a large batch of concurrent operations: all
/// sends and receives are posted up front, then a single deterministic
/// executor drives them to completion — no thread per request.
#[test]
fn thousand_concurrent_async_ops_on_one_thread() {
    const OPS: u64 = 1024;
    let world = World::pair(ThreadLevel::Multiple);
    let (a, b) = world.comm_pair();
    let (to_b, to_a) = (a.sole_peer().unwrap(), b.sole_peer().unwrap());

    let recvs: Vec<_> = (0..OPS).map(|i| to_a.recv_async(i)).collect();
    let sends: Vec<_> = (0..OPS)
        .map(|i| to_b.send_async(i, format!("msg-{i}").as_bytes()))
        .collect();
    let (got, sent) = block_on_with(
        async { (join_all(recvs).await, join_all(sends).await) },
        || {
            a.core().progress();
            b.core().progress();
        },
    );
    for s in sent {
        s.expect("send");
    }
    // Tag-matched: each payload lands on the receive with its tag.
    for (i, r) in got.into_iter().enumerate() {
        assert_eq!(&r.expect("recv")[..], format!("msg-{i}").as_bytes());
    }
}

/// The parking executor: futures park the thread, and completion
/// delivery from a background progression thread wakes it through the
/// waker table. This is the path where a lost wake would hang forever.
#[test]
fn progression_thread_wakes_parked_executor() {
    let world = World::pair(ThreadLevel::Multiple);
    let (a, b) = world.comm_pair();
    let (to_b, to_a) = (a.sole_peer().unwrap(), b.sole_peer().unwrap());

    let engine = Arc::new(ProgressEngine::new());
    engine.register(Arc::clone(a.core()) as _);
    engine.register(Arc::clone(b.core()) as _);
    let _pt = ProgressionThread::spawn(Arc::clone(&engine), None, IdlePolicy::Yield);

    let echo = std::thread::spawn(move || {
        block_on(async {
            for i in 0..32u64 {
                let m = to_a.recv_async(i).await.expect("echo recv");
                to_a.send_async_bytes(i, m).await.expect("echo send");
            }
        });
    });
    block_on(async {
        for i in 0..32u64 {
            to_b.send_async(i, b"ping").await.expect("send");
            let m = to_b.recv_async(i).await.expect("recv");
            assert_eq!(&m[..], b"ping");
        }
    });
    echo.join().unwrap();
}

/// Dropping a pending future must unregister its waker and leave the
/// stack healthy for later operations on the same endpoints.
#[test]
fn dropped_future_does_not_leak_its_waker() {
    let world = World::pair(ThreadLevel::Multiple);
    let (a, b) = world.comm_pair();
    let (to_b, to_a) = (a.sole_peer().unwrap(), b.sole_peer().unwrap());

    {
        let fut = to_a.recv_async(7);
        // Poll once so the waker registers, then drop it unresolved.
        let polled = block_on_with(
            async {
                let mut fut = fut;
                futures_poll_once(&mut fut).await
            },
            || {},
        );
        assert!(polled.is_none(), "nothing sent yet: must be pending");
    }
    assert!(
        to_a.waker_table().is_empty(),
        "dropped future left a waker registered"
    );

    // A fresh pair of operations on the same tag still completes (the
    // dropped receive consumed the posting, not the endpoint).
    let recv = to_a.recv_async(8);
    let send = to_b.send_async(8, b"after drop");
    let (r, s) = block_on_with(async { (recv.await, send.await) }, || {
        a.core().progress();
        b.core().progress();
    });
    s.expect("send");
    assert_eq!(&r.expect("recv")[..], b"after drop");
}

/// Polls `fut` exactly once: `Some(out)` if ready, `None` if pending.
async fn futures_poll_once<F: std::future::Future + Unpin>(fut: &mut F) -> Option<F::Output> {
    std::future::poll_fn(|cx| {
        use std::task::Poll;
        match std::pin::Pin::new(&mut *fut).poll(cx) {
            Poll::Ready(v) => Poll::Ready(Some(v)),
            Poll::Pending => Poll::Ready(None),
        }
    })
    .await
}
