//! Span-propagation regression gate: message-lifecycle spans must ride
//! the existing synchronization, not add their own.
//!
//! The same lockstep pingpong as `trace_integration.rs`, but pinning
//! the *lock* counts next to the *span* counts: if threading span ids
//! through submit → collect → wire → delivery → completion ever grows
//! a new lock acquisition on the fast path, the `LockAcquire` count
//! here moves and the test fails. Span emissions themselves are
//! lock-free ring writes; the async waker's span rides the waker
//! table's existing shard-lock acquisition.
//!
//! Single test on purpose: the trace rings are process-global, and a
//! sibling test draining them concurrently would perturb the counts.

#![cfg(feature = "trace")]

use std::collections::BTreeSet;
use std::sync::Arc;

use nomad::fabric::{ClockSource, WireModel};
use nomad::mpi::{ThreadLevel, World, WorldBuilder};
use nomad::obs::{assemble, Breakdown};
use nomad::sync::Semaphore;
use nomad::trace::{self, EventId};

const PINGPONGS: u64 = 16;

/// `LockAcquire` count of this exact workload measured *before* span
/// propagation existed. Spans must not move it.
const BASELINE_LOCK_ACQUIRES: u64 = 624;

#[test]
fn span_propagation_adds_no_lock_acquisitions() {
    let config = WorldBuilder::new(ThreadLevel::Multiple)
        .clock(ClockSource::manual())
        .rails(vec![WireModel::ideal()]);
    let world = World::with_config(2, config);
    let (a, b) = world.comm_pair();
    let (to_b, to_a) = (a.sole_peer().unwrap(), b.sole_peer().unwrap());

    let sent = Arc::new(Semaphore::new(0));
    let echoed = Arc::new(Semaphore::new(0));
    let (sent2, echoed2) = (Arc::clone(&sent), Arc::clone(&echoed));

    trace::reset();
    let echo = std::thread::spawn(move || {
        for i in 0..PINGPONGS {
            let r = to_a.irecv(i).expect("echo irecv");
            sent2.acquire();
            b.core().progress();
            assert!(r.is_complete(), "ping {i} not delivered");
            let msg = r.take_data().expect("ping payload");
            let s = to_a.isend_bytes(i, msg).expect("echo isend");
            b.core().progress();
            assert!(s.is_complete(), "echo {i} not injected");
            echoed2.release();
        }
    });
    for i in 0..PINGPONGS {
        let r = to_b.irecv(i).expect("irecv");
        let s = to_b.isend(i, b"span payload").expect("isend");
        a.core().progress();
        assert!(s.is_complete(), "eager send completes on injection");
        sent.release();
        echoed.acquire();
        a.core().progress();
        assert!(r.is_complete(), "echo {i} not delivered");
    }
    echo.join().unwrap();
    let trace = trace::take_trace();
    assert_eq!(trace.dropped(), 0, "ring wrapped mid-test");

    // The locking gate: span propagation is piggybacked on existing
    // critical sections, so the lock counts equal the pre-span baseline.
    assert_eq!(trace.count(EventId::LockAcquire), BASELINE_LOCK_ACQUIRES);
    assert_eq!(trace.count(EventId::LockRelease), BASELINE_LOCK_ACQUIRES);

    // Exact span choreography: n messages, each with a send span and a
    // matched-receive span.
    let n = 2 * PINGPONGS;
    assert_eq!(trace.count(EventId::SpanSubmit), 2 * n, "send + recv");
    assert_eq!(trace.count(EventId::SpanCollect), n);
    assert_eq!(trace.count(EventId::SpanWireTx), n);
    assert_eq!(trace.count(EventId::SpanWireRx), n);
    assert_eq!(trace.count(EventId::SpanDeliver), n);
    assert_eq!(trace.count(EventId::SpanComplete), 2 * n);
    assert_eq!(trace.count(EventId::SpanRetx), 0, "ideal wire, no loss");
    assert_eq!(trace.count(EventId::SpanWake), 0, "no async waiters");

    // Every submitted span id is distinct and nonzero, and every
    // delivery joins a wire span to a live receive span.
    let merged = trace.merged();
    let submitted: BTreeSet<u64> = merged
        .iter()
        .filter(|e| e.id == EventId::SpanSubmit)
        .map(|e| e.a)
        .collect();
    assert_eq!(submitted.len() as u64, 2 * n, "span ids must be unique");
    assert!(!submitted.contains(&0), "span 0 means 'no span'");
    for e in merged.iter().filter(|e| e.id == EventId::SpanDeliver) {
        assert!(submitted.contains(&e.a), "unknown sender span {}", e.a);
        assert!(submitted.contains(&e.b), "unknown receive span {}", e.b);
        assert_ne!(e.a, e.b, "send and receive spans are distinct");
    }

    // The assembler stitches each message end to end: every send-origin
    // timeline joined a peer, and its critical-path components telescope
    // exactly to the end-to-end total.
    let timelines = assemble(&trace);
    let breakdowns = Breakdown::all(&timelines);
    assert_eq!(breakdowns.len() as u64, n, "one breakdown per message");
    for (span, bd) in &breakdowns {
        let sum: u64 = bd.components().iter().map(|(_, v)| v).sum();
        assert_eq!(sum, bd.total_ns, "span {span} components must telescope");
    }
    let joined = timelines.iter().filter(|t| t.peer.is_some()).count();
    assert!(
        joined as u64 >= n,
        "every send span must join its receive span (got {joined})"
    );
}
