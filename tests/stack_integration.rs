//! Cross-crate integration: scheduler + progression engine + core +
//! fabric working as one stack.

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;

use nomad::core::{CoreBuilder, CoreConfig, GateId, LockingMode};
use nomad::fabric::{ClockSource, Fabric, WireModel};
use nomad::mpi::{ThreadLevel, World, WorldBuilder};
use nomad::progress::{IdlePolicy, OffloadMode, ProgressEngine, ProgressionThread, TaskletEngine};
use nomad::sched::{Scheduler, SchedulerConfig};
use nomad::sync::WaitStrategy;

/// Passive waits driven purely by scheduler hooks: the paper's "poll from
/// MARCEL hooks" configuration, end to end.
#[test]
fn scheduler_hooks_drive_passive_communication() {
    let fabric = Fabric::real_time();
    let (pa, pb) = fabric.pair(&[WireModel::myri_10g()], true);
    let a = CoreBuilder::new(CoreConfig::default())
        .add_gate(pa.drivers())
        .build();
    let b = CoreBuilder::new(CoreConfig::default())
        .add_gate(pb.drivers())
        .build();

    let engine = Arc::new(ProgressEngine::new());
    engine.register(Arc::clone(&a) as _);
    engine.register(Arc::clone(&b) as _);

    // The engine polls from the scheduler's idle/yield/timer hooks only.
    let sched = Scheduler::new(
        SchedulerConfig::default()
            .workers(1)
            .timer_interval(Duration::from_micros(200)),
    );
    engine.attach(&sched);

    let recv = b.irecv(GateId(0), 1).expect("irecv");
    let send = a
        .isend(GateId(0), 1, Bytes::from_static(b"via hooks"))
        .expect("isend");
    // Purely passive: neither waiter polls anything itself.
    recv.wait_flag_only(WaitStrategy::Passive);
    send.wait_flag_only(WaitStrategy::Passive);
    assert_eq!(recv.take_data().unwrap(), Bytes::from_static(b"via hooks"));
    sched.shutdown();
}

/// The full §4.2 configuration: submissions deferred through a tasklet
/// engine while a progression thread keeps the stack moving.
#[test]
fn tasklet_offload_end_to_end() {
    let fabric = Fabric::real_time();
    let (pa, pb) = fabric.pair(&[WireModel::ideal()], true);
    let tasklets = Arc::new(TaskletEngine::new(1, None));
    let a = CoreBuilder::new(
        CoreConfig::default()
            .locking(LockingMode::Fine)
            .offload(OffloadMode::Tasklet)
            .tasklet_engine(Arc::clone(&tasklets)),
    )
    .add_gate(pa.drivers())
    .build();
    let b = CoreBuilder::new(CoreConfig::default())
        .add_gate(pb.drivers())
        .build();

    let engine = Arc::new(ProgressEngine::new());
    engine.register(Arc::clone(&a) as _);
    engine.register(Arc::clone(&b) as _);
    let pt = ProgressionThread::spawn(Arc::clone(&engine), None, IdlePolicy::Yield);

    for i in 0..20u64 {
        let recv = b.irecv(GateId(0), i).expect("irecv");
        let send = a
            .isend(GateId(0), i, Bytes::from(format!("tasklet {i}")))
            .expect("isend");
        recv.wait_flag_only(WaitStrategy::Passive);
        send.wait_flag_only(WaitStrategy::Passive);
        assert_eq!(
            recv.take_data().unwrap(),
            Bytes::from(format!("tasklet {i}"))
        );
    }
    assert!(
        a.offloader().deferred_count() >= 20,
        "submissions not deferred"
    );
    pt.stop();
}

/// Idle-core offload: the progression thread drains the deferred
/// submission queue (no tasklets).
#[test]
fn idle_core_offload_end_to_end() {
    let fabric = Fabric::real_time();
    let (pa, pb) = fabric.pair(&[WireModel::ideal()], true);
    let a = CoreBuilder::new(
        CoreConfig::default()
            .locking(LockingMode::Fine)
            .offload(OffloadMode::IdleCore),
    )
    .add_gate(pa.drivers())
    .build();
    let b = CoreBuilder::new(CoreConfig::default())
        .add_gate(pb.drivers())
        .build();

    let engine = Arc::new(ProgressEngine::new());
    engine.register(Arc::clone(a.offloader()) as _); // drains submissions
    engine.register(Arc::clone(&a) as _);
    engine.register(Arc::clone(&b) as _);
    let pt = ProgressionThread::spawn(Arc::clone(&engine), None, IdlePolicy::Yield);

    let recv = b.irecv(GateId(0), 0).expect("irecv");
    let send = a
        .isend(GateId(0), 0, Bytes::from_static(b"deferred"))
        .expect("isend");
    recv.wait_flag_only(WaitStrategy::Passive);
    send.wait_flag_only(WaitStrategy::Passive);
    assert_eq!(recv.take_data().unwrap(), Bytes::from_static(b"deferred"));
    assert_eq!(a.offloader().deferred_count(), 1);
    pt.stop();
}

/// Virtual-clock world: deterministic delivery timing through the MPI
/// facade.
#[test]
fn virtual_clock_world() {
    let clock = ClockSource::manual();
    let config = WorldBuilder::new(ThreadLevel::Multiple).clock(clock.clone());
    let world = World::with_config(2, config);
    let (a, b) = world.comm_pair();
    let (to_b, to_a) = (a.sole_peer().unwrap(), b.sole_peer().unwrap());

    let send = to_b.isend(7, b"timed").expect("isend");
    a.core().progress();
    assert!(send.is_complete(), "eager send completes on injection");
    let recv = to_a.irecv(7).expect("irecv");
    b.core().progress();
    assert!(!recv.is_complete(), "nothing deliverable at t = 0");
    clock.advance(10_000_000);
    b.core().progress();
    assert!(recv.is_complete());
    assert_eq!(recv.take_data().unwrap(), Bytes::from_static(b"timed"));
}

/// Multirail world: a large message over two rails through the facade.
#[test]
fn multirail_world_rendezvous() {
    let config = WorldBuilder::new(ThreadLevel::Multiple)
        .rails(vec![WireModel::ideal(), WireModel::ideal()]);
    let world = World::with_config(2, config);
    let (a, b) = world.comm_pair();
    let big = vec![0xEEu8; 256 * 1024];
    let expected = big.clone();
    let echo = std::thread::spawn(move || b.sole_peer().unwrap().recv(0).expect("recv"));
    a.sole_peer().unwrap().send(0, &big).expect("send");
    assert_eq!(echo.join().unwrap(), expected);
    // Both rails carried packets.
    let ports = world.ports(0, 1).expect("ports");
    for (i, d) in ports.sim_drivers().iter().enumerate() {
        assert!(
            d.counters().tx_packets.get() > 0,
            "rail {i} carried nothing"
        );
    }
}

/// The simulator's figure experiments run end to end (smoke).
#[test]
fn sim_experiments_smoke() {
    use nomad::sim::{experiments, SimCosts};
    let series = experiments::fig3_locking_latency(SimCosts::paper(), &[4, 64]);
    assert_eq!(series.len(), 3);
    for s in &series {
        assert_eq!(s.points.len(), 2);
        assert!(s.points.iter().all(|&(_, us)| us > 0.0));
    }
}

/// Calibration integrates with the simulator.
#[test]
fn calibrated_sim_runs() {
    use nomad::bench::calibrate;
    use nomad::sim::experiments;
    let cal = calibrate::calibrate();
    let costs = cal.to_sim_costs();
    let series = experiments::fig9_offload_tasklets(costs, &[2048]);
    assert_eq!(series.len(), 3);
}
