//! Stack-wide tracing under the deterministic simulator: a traced
//! two-thread pingpong over a virtual-clock world must produce *exact*
//! event counts — the schema is precise enough to audit, not just to
//! eyeball.
//!
//! The two threads advance in lockstep (semaphore handshake, one
//! explicit `progress()` per step) rather than busy-waiting: free
//! spinning emits an unbounded number of poll events, which both wraps
//! the rings and makes counts scheduling-dependent.
//!
//! Single test on purpose: the trace rings are process-global, and a
//! sibling test draining them concurrently would perturb the counts.

#![cfg(feature = "trace")]

use std::sync::Arc;

use nomad::fabric::{ClockSource, WireModel};
use nomad::mpi::{ThreadLevel, World, WorldBuilder};
use nomad::sync::Semaphore;
use nomad::trace::{self, EventId, TraceReport};

const PINGPONGS: u64 = 32;

#[test]
fn traced_sim_pingpong_has_exact_event_counts() {
    // Manual clock + ideal wire: everything is deliverable at t = 0, so
    // the pingpong runs to completion without advancing time, and
    // `World::try_with_config` routes the trace clock to the same
    // virtual time base as the fabric.
    let config = WorldBuilder::new(ThreadLevel::Multiple)
        .clock(ClockSource::manual())
        .rails(vec![WireModel::ideal()]);
    let world = World::with_config(2, config);
    let (a, b) = world.comm_pair();
    let (to_b, to_a) = (a.sole_peer().unwrap(), b.sole_peer().unwrap());

    let sent = Arc::new(Semaphore::new(0)); // ping is on the wire
    let echoed = Arc::new(Semaphore::new(0)); // echo is on the wire
    let (sent2, echoed2) = (Arc::clone(&sent), Arc::clone(&echoed));

    trace::reset();
    let echo = std::thread::spawn(move || {
        for i in 0..PINGPONGS {
            let r = to_a.irecv(i).expect("echo irecv");
            sent2.acquire();
            b.core().progress();
            assert!(r.is_complete(), "ping {i} not delivered");
            let msg = r.take_data().expect("ping payload");
            let s = to_a.isend_bytes(i, msg).expect("echo isend");
            b.core().progress();
            assert!(s.is_complete(), "echo {i} not injected");
            echoed2.release();
        }
    });
    for i in 0..PINGPONGS {
        let r = to_b.irecv(i).expect("irecv");
        let s = to_b.isend(i, b"traced payload").expect("isend");
        a.core().progress();
        assert!(s.is_complete(), "eager send completes on injection");
        sent.release();
        echoed.acquire();
        a.core().progress();
        assert!(r.is_complete(), "echo {i} not delivered");
        assert_eq!(&r.take_data().expect("echo payload")[..], b"traced payload");
    }
    echo.join().unwrap();
    let trace = trace::take_trace();

    assert!(trace::enabled());
    assert_eq!(trace.dropped(), 0, "ring wrapped mid-test");

    // One message per direction per iteration; strict alternation means
    // exactly one packet per message and no WouldBlock retries.
    let n = 2 * PINGPONGS;
    assert_eq!(trace.count(EventId::SubmitBegin), n);
    assert_eq!(trace.count(EventId::SubmitEnd), n);
    assert_eq!(trace.count(EventId::RecvPosted), n);
    assert_eq!(trace.count(EventId::QueueDepth), n);
    assert_eq!(trace.count(EventId::TransmitBegin), n);
    assert_eq!(trace.count(EventId::TransmitEnd), n);
    assert_eq!(trace.count(EventId::PacketTx), n);
    assert_eq!(trace.count(EventId::PacketRx), n);
    assert_eq!(trace.count(EventId::DispatchBegin), n);
    assert_eq!(trace.count(EventId::DispatchEnd), n);
    // Each side calls `progress()` exactly twice per iteration.
    assert_eq!(trace.count(EventId::ProgressPass), 2 * n);
    // Every transmit was accepted on the first post (b = 1).
    let merged = trace.merged();
    assert!(merged
        .iter()
        .filter(|e| e.id == EventId::TransmitEnd)
        .all(|e| e.b == 1));

    // The trace clock is the world's virtual clock: time never advanced,
    // so every record sits at t = 0 — bit-reproducible by construction.
    assert!(merged.iter().all(|e| e.ts == 0), "real clock leaked in");

    // The report sees the same story: submit spans pair up exactly.
    let spans = TraceReport::span_durations(&trace, EventId::SubmitBegin, EventId::SubmitEnd);
    assert_eq!(spans.len(), n as usize);
    assert!(spans.iter().all(|&d| d == 0));
    let report = TraceReport::from_trace(&trace);
    assert_eq!(report.count(EventId::SubmitBegin), n);
    let folded = report.folded();
    assert!(folded.contains("nomad;core;submit"));
    assert!(folded.contains("nomad;events;ProgressPass"));
}
