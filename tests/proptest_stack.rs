//! Property-based tests on the stack's core invariants.

use std::sync::Arc;

use bytes::Bytes;
use proptest::prelude::*;

use nomad::core::{CoreBuilder, CoreConfig, GateId, LockingMode};
use nomad::fabric::{Driver, LoopbackDriver, MpmcRing};

/// Deterministic payload for message `i` of length `len`.
fn payload(i: usize, len: usize) -> Bytes {
    Bytes::from(
        (0..len)
            .map(|j| ((i.wrapping_mul(131)).wrapping_add(j.wrapping_mul(7)) % 251) as u8)
            .collect::<Vec<u8>>(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        .. ProptestConfig::default()
    })]

    /// Any mix of message sizes and tags is delivered exactly once, with
    /// correct contents, FIFO per tag — whatever the locking mode and
    /// posting order.
    #[test]
    fn messages_delivered_exactly_once(
        msgs in prop::collection::vec((0u64..4, 0usize..3_000), 1..16),
        mode_idx in 0usize..3,
        recv_first in any::<bool>(),
    ) {
        let mode = LockingMode::ALL[mode_idx];
        let (da, db) = LoopbackDriver::pair(256);
        let config = CoreConfig::default().locking(mode).eager_threshold(1024);
        let a = CoreBuilder::new(config.clone())
            .add_gate(vec![Arc::new(da) as Arc<dyn Driver>])
            .build();
        let b = CoreBuilder::new(config)
            .add_gate(vec![Arc::new(db) as Arc<dyn Driver>])
            .build();

        let mut recvs = Vec::new();
        if recv_first {
            for &(tag, _) in &msgs {
                recvs.push(b.irecv(GateId(0), tag).unwrap());
            }
        }
        let sends: Vec<_> = msgs
            .iter()
            .enumerate()
            .map(|(i, &(tag, len))| a.isend(GateId(0), tag, payload(i, len)).unwrap())
            .collect();
        if !recv_first {
            for &(tag, _) in &msgs {
                recvs.push(b.irecv(GateId(0), tag).unwrap());
            }
        }

        // Drive both cores until every request completes.
        let mut passes = 0;
        while recvs.iter().any(|r| !r.is_complete())
            || sends.iter().any(|s| !s.is_complete())
        {
            a.progress();
            b.progress();
            passes += 1;
            prop_assert!(passes < 1_000_000, "stack stopped making progress");
        }

        // Per tag, receives see that tag's messages in send order.
        let mut expected_per_tag: std::collections::HashMap<u64, Vec<usize>> =
            std::collections::HashMap::new();
        for (i, &(tag, _)) in msgs.iter().enumerate() {
            expected_per_tag.entry(tag).or_default().push(i);
        }
        let mut cursor: std::collections::HashMap<u64, usize> =
            std::collections::HashMap::new();
        for (r, &(tag, len)) in recvs.iter().zip(&msgs) {
            let data = r.take_data().expect("completed recv has data");
            let k = cursor.entry(tag).or_default();
            let msg_index = expected_per_tag[&tag][*k];
            *k += 1;
            prop_assert_eq!(
                data,
                payload(msg_index, msgs[msg_index].1),
                "tag {} delivery #{} (len {})", tag, *k, len
            );
        }
    }

    /// Wire-format roundtrip for arbitrary entry sequences.
    #[test]
    fn wire_format_roundtrip(
        entries in prop::collection::vec(
            (0u8..4, any::<u64>(), any::<u32>(), 0usize..2_000),
            1..16
        )
    ) {
        use nomad::core::wire::{decode_packet, encode_packet, Entry};
        let entries: Vec<Entry> = entries
            .into_iter()
            .map(|(kind, tag, seq, len)| match kind {
                0 => Entry::Eager {
                    tag,
                    seq,
                    data: payload(seq as usize, len),
                },
                1 => Entry::Rts {
                    tag,
                    seq,
                    total: len as u32,
                },
                2 => Entry::Cts { tag, seq },
                _ => Entry::Data {
                    tag,
                    seq,
                    offset: (len as u32).wrapping_mul(3),
                    data: payload(tag as usize, len),
                },
            })
            .collect();
        let decoded = decode_packet(encode_packet(&entries)).expect("decode");
        prop_assert_eq!(decoded, entries);
    }

    /// The MPMC ring behaves like a FIFO queue under sequential use, for
    /// any interleaving of pushes and pops.
    #[test]
    fn mpmc_ring_matches_model(
        ops in prop::collection::vec(any::<bool>(), 1..200),
        cap in 1usize..32,
    ) {
        let ring = MpmcRing::new(cap);
        let mut model = std::collections::VecDeque::new();
        let mut next = 0u32;
        for push in ops {
            if push {
                let ok = ring.push(next).is_ok();
                let model_ok = model.len() < ring.capacity();
                prop_assert_eq!(ok, model_ok, "push acceptance diverged");
                if ok {
                    model.push_back(next);
                }
                next += 1;
            } else {
                prop_assert_eq!(ring.pop(), model.pop_front());
            }
        }
        // Drain and compare the tails.
        while let Some(v) = ring.pop() {
            prop_assert_eq!(Some(v), model.pop_front());
        }
        prop_assert!(model.is_empty());
    }

    /// Rendezvous chunking reassembles arbitrary large payloads intact
    /// for any chunk size.
    #[test]
    fn rendezvous_reassembly(
        len in 1usize..60_000,
        chunk in 512usize..8_192,
        seed in any::<u8>(),
    ) {
        let (da, db) = LoopbackDriver::pair(512);
        let config = CoreConfig::default()
            .eager_threshold(64)
            .rdv_chunk(chunk);
        let a = CoreBuilder::new(config.clone())
            .add_gate(vec![Arc::new(da) as Arc<dyn Driver>])
            .build();
        let b = CoreBuilder::new(config)
            .add_gate(vec![Arc::new(db) as Arc<dyn Driver>])
            .build();
        let data = Bytes::from(
            (0..len).map(|j| (j % (seed as usize + 2)) as u8).collect::<Vec<u8>>()
        );
        let recv = b.irecv(GateId(0), 0).unwrap();
        let send = a.isend(GateId(0), 0, data.clone()).unwrap();
        let mut passes = 0;
        while !recv.is_complete() || !send.is_complete() {
            a.progress();
            b.progress();
            passes += 1;
            prop_assert!(passes < 1_000_000, "rendezvous stalled");
        }
        prop_assert_eq!(recv.take_data().unwrap(), data);
    }
}

/// Pinned regression: the legacy proptest regression file recorded a
/// shrunk failure `entries = [(3, 140814840257324742, 0, 1489)]` for
/// `wire_format_roundtrip` (a single `Entry::Data` whose 1489-byte payload
/// once tripped a length-prefix bug). The vendored proptest runner cannot
/// replay foreign `cc` hashes, so the case lives on as an explicit test.
#[test]
fn wire_format_roundtrip_data_entry_1489_bytes() {
    use nomad::core::wire::{decode_packet, encode_packet, Entry};
    let entries = vec![Entry::Data {
        tag: 140814840257324742,
        seq: 0,
        offset: 1489u32.wrapping_mul(3),
        data: payload(140814840257324742u64 as usize, 1489),
    }];
    let decoded = decode_packet(encode_packet(&entries)).expect("decode");
    assert_eq!(decoded, entries);
}
