//! Seeded lock-order deadlock for the static analyzer's negative test.
//!
//! Two classed spin locks are taken in opposite orders on two paths that
//! no test ever runs concurrently (or at all): `publish_entry` holds
//! `fixture.publish` while pruning (which takes `fixture.reclaim`), and
//! `reclaim_all` holds `fixture.reclaim` while republishing (which takes
//! `fixture.publish`). The runtime lockcheck could only catch this if a
//! test exercised *both* paths; `cargo xtask analyze-locks --fixture
//! tests/fixtures/seeded_deadlock` must find the cycle with both
//! acquisition stacks — one of them through the call chain
//! `publish_entry -> prune_oldest`.

use nm_sync::SpinLock;

pub struct Registry {
    publish: SpinLock<Vec<u64>>,
    reclaim: SpinLock<Vec<u64>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    pub fn new() -> Self {
        Registry {
            publish: SpinLock::with_class("fixture.publish", Vec::new()),
            reclaim: SpinLock::with_class("fixture.reclaim", Vec::new()),
        }
    }

    /// Path A: publish -> (via `prune_oldest`) reclaim.
    pub fn publish_entry(&self, id: u64) {
        let mut p = self.publish.lock();
        p.push(id);
        if p.len() > 8 {
            self.prune_oldest();
        }
        drop(p);
    }

    fn prune_oldest(&self) {
        let mut r = self.reclaim.lock();
        r.push(0);
    }

    /// Path B: reclaim -> publish. Opposite order: deadlock seed.
    pub fn reclaim_all(&self) -> usize {
        let mut r = self.reclaim.lock();
        let n = r.len();
        r.clear();
        let mut p = self.publish.lock();
        p.clear();
        drop(p);
        drop(r);
        n
    }
}
