//! End-to-end metrics: one pingpong through the whole stack must light
//! up every layer's always-on metrics, and both export formats must
//! carry them.

use nomad::mpi::{ThreadLevel, World};

/// Runs traffic through the MPI facade and checks that each layer's
/// metric shows up in the same global snapshot with plausible values.
#[test]
fn stack_traffic_feeds_every_layer() {
    let world = World::pair(ThreadLevel::Multiple);
    let (a, b) = world.comm_pair();
    let (to_b, to_a) = (a.sole_peer().unwrap(), b.sole_peer().unwrap());

    let echo = std::thread::spawn(move || {
        for _ in 0..32 {
            let m = to_a.recv(7).expect("recv");
            to_a.send(7, &m).expect("send");
        }
    });
    for _ in 0..32 {
        // Explicit isend/irecv + wait: exercises the facade-level wait
        // path (mpi.wait_ns) on top of the core histograms.
        let recv = to_b.irecv(7).expect("irecv");
        let send = to_b.isend(7, b"metrics pingpong").expect("isend");
        to_b.wait(&send).expect("wait send");
        to_b.wait(&recv).expect("wait recv");
        assert_eq!(&recv.take_data().unwrap()[..], b"metrics pingpong");
    }
    echo.join().unwrap();

    let snap = nomad::metrics::metrics().snapshot();

    // Histograms from the core and facade layers. Other tests in this
    // binary share the global registry, so assert lower bounds only.
    for name in [
        "core.send_ns",
        "core.recv_ns",
        "core.wait_ns",
        "mpi.wait_ns",
    ] {
        let h = snap
            .hist(name)
            .unwrap_or_else(|| panic!("histogram {name} missing"));
        assert!(h.count() >= 64, "{name} recorded {} < 64", h.count());
        assert!(h.max() > 0, "{name} has zero max");
        assert!(h.quantile(0.5) <= h.quantile(0.99), "{name} quantile order");
    }

    // Fabric traffic counters: 64 app messages each way, plus whatever
    // protocol packets rode along.
    assert!(snap.counter("fabric.tx_packets").unwrap_or(0) >= 64);
    assert!(snap.counter("fabric.rx_packets").unwrap_or(0) >= 64);
    assert!(snap.counter("fabric.tx_bytes").unwrap_or(0) >= 64 * 16);
    // Everything sent was delivered: no bytes left on the wire.
    assert_eq!(snap.gauge("fabric.inflight_bytes"), Some(0));

    // The always-on lock aggregates (coarse mode locks on every call).
    assert!(snap.counter("sync.lock.acquisitions").unwrap_or(0) > 0);

    // Both export formats carry the same metric families.
    let om = nomad::metrics::export::to_openmetrics(&snap);
    assert!(om.contains("nomad_core_send_ns_bucket"), "om:\n{om}");
    assert!(om.contains("nomad_fabric_tx_packets_total"));
    assert!(om.ends_with("# EOF\n"));
    let json = nomad::metrics::export::to_json(&snap);
    assert!(json.contains("\"core.send_ns\""), "json:\n{json}");
    assert!(json.contains("\"fabric.tx_packets\""));
}

/// The busy-wait strategy spins inside the library; its wait histogram
/// and the progress counters must both advance when an engine polls.
#[test]
fn progress_engine_health_metrics_advance() {
    use nomad::progress::{PollOutcome, ProgressEngine};
    use std::sync::Arc;

    let engine = ProgressEngine::new();
    engine.register(Arc::new(|| PollOutcome::Idle));
    let before = nomad::metrics::metrics().snapshot();
    for _ in 0..10 {
        engine.poll_all();
    }
    let after = nomad::metrics::metrics().snapshot();
    let polls_before = before.counter("progress.polls").unwrap_or(0);
    let polls_after = after.counter("progress.polls").unwrap_or(0);
    assert!(
        polls_after >= polls_before + 10,
        "progress.polls {polls_before} -> {polls_after}"
    );
    // Ten straight idle passes on this engine: the streak gauge reaches
    // at least 10 unless another engine polled concurrently (it resets
    // on progress, so only a concurrent *progressing* poller lowers it —
    // the high watermark still proves streak tracking ran).
    assert!(after.gauge("progress.empty_poll_streak_max").unwrap_or(0) >= 1);
}
